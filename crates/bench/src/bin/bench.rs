//! End-to-end sweep benchmark: times every figure (and ablation) sweep,
//! serial versus parallel, and emits a machine-readable `BENCH.json` so the
//! performance trajectory can be tracked across changes.
//!
//! ```text
//! cargo run --release -p entk-bench --bin bench -- [OPTIONS]
//!
//!   --parallel        time parallel sweeps against the serial baseline
//!                     (the default; kept as an explicit opt-in flag)
//!   --serial          time the serial path only (no comparison)
//!   --scale N         divide fig5–fig9 problem sizes by N   [default: 32]
//!   --seed S          sweep seed                            [default: 2016]
//!   --threads N       worker threads for the parallel mode (sets
//!                     ENTK_THREADS; default: host cores)
//!   --only a,b        run only the named sweeps (e.g. fig3,fig4)
//!   --out PATH        output path                   [default: BENCH.json]
//!   --trace PATH      also write a Chrome trace-event JSON of one
//!                     representative session (open in Perfetto or
//!                     chrome://tracing)
//!   --scale-sweep     run the fig10 throughput scaling sweep instead of
//!                     the figure sweeps: events/sec and wall-clock for
//!                     EoP/SAL ensembles of 10^3 → --max-tasks tasks
//!   --max-tasks N     largest fig10 ensemble            [default: 1000000]
//!   --members N       federated scale sweep: late-bind each ensemble
//!                     across N simulated clusters driven on the member
//!                     worker pool, and report events/sec scaling vs a
//!                     single member (implies --scale-sweep semantics;
//!                     N >= 2)
//!   --sim-threads N   member-pool workers for --members (0 = one per
//!                     member)                           [default: 0]
//!   --budget-secs S   fail unless the whole scale sweep finishes within
//!                     S seconds of wall clock (CI scale-smoke assertion)
//!   --baseline PATH   perf-regression gate: compare the scale sweep's
//!                     events/sec (largest point per series) against the
//!                     committed floors in PATH (BENCH-BASELINE.json) and
//!                     fail on a regression past the file's tolerance
//!   --workload        run the fig11 open-loop workload sweep instead:
//!                     the synthetic trace served at each admission-slot
//!                     width on the simulated and federated backends,
//!                     with replay-identity and cross-check assertions,
//!                     plus the fifo-vs-fair-share fairness ablation on
//!                     the hot-tenant trace; writes WORKLOAD.json +
//!                     WORKLOAD.jsonl. With --baseline, the serve path's
//!                     events/sec is gated against the fig11 floors
//!   --policy P        fig11 admission policy: fifo | fair [default: fifo]
//!   --sessions N      fig11 stream length                  [default: 24]
//!   --tenants N       fig11 tenant population               [default: 8]
//!   --serve-scale     (with --workload) run the out-of-core serve-scale
//!                     sweep instead of fig11: synthetic streams of
//!                     10^3 → --max-sessions sessions served end-to-end
//!                     through the bounded-memory streaming engine on the
//!                     simulated and federated backends, recording
//!                     events/sec, wall, and peak RSS (VmHWM); asserts
//!                     RSS flatness (final peak <= 2x the 10^4 peak).
//!                     With --baseline, each leg's events/sec is gated
//!                     against floors.serve_scale and the final VmHWM
//!                     against ceilings.serve_scale_rss_kb
//!   --max-sessions N  largest serve-scale stream        [default: 1000000]
//! ```
//!
//! Every figure entry records `serial_secs`, `parallel_secs`, `speedup`,
//! and `identical` — whether the parallel rows were bit-for-bit equal to
//! the serial ones (they must always be; see `entk_bench::sweep`). The
//! fig10 rows also carry host wall-clock values, which legitimately differ
//! between runs; their identity check compares the deterministic
//! projection (`entk_bench::deterministic_view`) instead.

use entk_bench::{
    deterministic_view, fairness_ablation_with, federated_resilience_with, fig11_with_policy,
    figures, leg_jsonl, resilience_sweep_with, serve_scale_axis, serve_scale_point,
    FairnessAblation, Row, SweepRunner, FIG11_HALF_LIFE_SECS, FIG11_SESSIONS, FIG11_SLOTS,
    FIG11_TENANTS, SERVE_SCALE_SLOTS, SERVE_SCALE_TENANTS,
};
use entk_core::prelude::DriveMode;
use entk_workload::{AdmissionPolicy, StreamBackend};
use serde_json::json;
use std::time::Instant;

/// One-line diagnostic + non-zero exit: how every identity, cross-check,
/// budget, or baseline violation leaves the process, so CI logs end with
/// the reason instead of a panic backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

struct Options {
    serial_only: bool,
    scale: usize,
    seed: u64,
    only: Option<Vec<String>>,
    out: Option<String>,
    trace: Option<String>,
    scale_sweep: bool,
    max_tasks: usize,
    members: usize,
    sim_threads: usize,
    budget_secs: Option<f64>,
    baseline: Option<String>,
    workload: bool,
    policy: AdmissionPolicy,
    sessions: usize,
    tenants: u64,
    serve_scale: bool,
    max_sessions: usize,
}

impl Options {
    /// Output path: `--out` if given, else the mode's canonical name.
    fn out_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            if self.workload {
                "WORKLOAD.json".to_string()
            } else {
                "BENCH.json".to_string()
            }
        })
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        serial_only: false,
        scale: 32,
        seed: 2016,
        only: None,
        out: None,
        trace: None,
        scale_sweep: false,
        max_tasks: 1_000_000,
        members: 1,
        sim_threads: 0,
        budget_secs: None,
        baseline: None,
        workload: false,
        policy: AdmissionPolicy::Fifo,
        sessions: FIG11_SESSIONS,
        tenants: FIG11_TENANTS,
        serve_scale: false,
        max_sessions: 1_000_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--parallel" => opts.serial_only = false,
            "--serial" => opts.serial_only = true,
            "--scale" => opts.scale = value("--scale").parse().expect("--scale: integer"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--threads" => std::env::set_var("ENTK_THREADS", value("--threads")),
            "--only" => {
                opts.only = Some(
                    value("--only")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--out" => opts.out = Some(value("--out")),
            "--trace" => opts.trace = Some(value("--trace")),
            "--scale-sweep" => opts.scale_sweep = true,
            "--max-tasks" => {
                opts.max_tasks = value("--max-tasks").parse().expect("--max-tasks: integer")
            }
            "--members" => {
                opts.members = value("--members").parse().expect("--members: integer");
                opts.scale_sweep = true;
                assert!(opts.members >= 2, "--members needs at least 2 clusters");
            }
            "--sim-threads" => {
                opts.sim_threads = value("--sim-threads")
                    .parse()
                    .expect("--sim-threads: integer")
            }
            "--budget-secs" => {
                opts.budget_secs = Some(value("--budget-secs").parse().expect("--budget-secs: f64"))
            }
            "--baseline" => opts.baseline = Some(value("--baseline")),
            "--workload" => opts.workload = true,
            "--policy" => {
                let name = value("--policy");
                opts.policy = match AdmissionPolicy::parse(&name) {
                    Ok(AdmissionPolicy::Fifo) => AdmissionPolicy::Fifo,
                    Ok(AdmissionPolicy::FairShare { .. }) => AdmissionPolicy::FairShare {
                        half_life_secs: FIG11_HALF_LIFE_SECS,
                    },
                    Err(e) => panic!("{e}"),
                };
            }
            "--sessions" => {
                opts.sessions = value("--sessions").parse().expect("--sessions: integer")
            }
            "--tenants" => opts.tenants = value("--tenants").parse().expect("--tenants: integer"),
            "--serve-scale" => {
                opts.serve_scale = true;
                opts.workload = true;
            }
            "--max-sessions" => {
                opts.max_sessions = value("--max-sessions")
                    .parse()
                    .expect("--max-sessions: integer");
                assert!(
                    opts.max_sessions >= 1000,
                    "--max-sessions needs at least 1000"
                );
            }
            other => panic!("unknown argument {other:?} (see --help in the module docs)"),
        }
    }
    opts
}

/// Worker threads the parallel figure sweeps will actually use.
/// `ENTK_THREADS` wins when set — even when a rayon pool was already
/// initialized at a different width before the flag landed in the
/// environment — then the pool's own count. This is *figure-sweep*
/// parallelism (points fanned across cores); the federated member pool
/// (`--sim-threads`) is a separate axis recorded separately in BENCH.json.
fn sweep_threads() -> usize {
    std::env::var("ENTK_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(rayon::current_num_threads)
}

/// Warns when the parallel figure sweeps have a single worker (serial in
/// disguise); returns whether the warning fired so BENCH.json records it.
/// Fires only for the sweep axis — a single-threaded sweep is fine when
/// the measurement of interest is the federated member pool.
fn warn_if_single_thread(threads: usize) -> bool {
    if threads == 1 {
        eprintln!(
            "warning: the figure sweep has 1 worker thread; parallel sweep \
             timings will match serial ones (set --threads or ENTK_THREADS \
             on a multi-core host)"
        );
    }
    threads == 1
}

/// The `--scale-sweep` mode: the fig10 throughput scaling figure —
/// events/sec and wall-clock for EoP/SAL ensembles from 10^3 up to
/// `--max-tasks` tasks, with serial/parallel identity on the deterministic
/// projection of each row (wall-clock values legitimately vary run to run).
fn run_scale_sweep(opts: &Options) {
    let threads = sweep_threads();
    let threads_warning = warn_if_single_thread(threads);

    let t0 = Instant::now();
    let serial_rows = figures::fig10_with(&SweepRunner::serial(), opts.seed, opts.max_tasks);
    let serial_secs = t0.elapsed().as_secs_f64();

    let points: Vec<_> = serial_rows
        .iter()
        .map(|row| {
            json!({
                "series": row.series,
                "tasks": row.x,
                "ttc": row.value("ttc"),
                "events": row.value("events"),
                "wall_secs": row.value("wall_secs"),
                "events_per_sec": row.value("events_per_sec"),
            })
        })
        .collect();
    for row in &serial_rows {
        println!(
            "{:>6} n={:<8} wall {:>8.3}s  {:>12.0} events  {:>12.0} events/sec  ttc {:.1}",
            row.series,
            row.x,
            row.value("wall_secs").unwrap_or(0.0),
            row.value("events").unwrap_or(0.0),
            row.value("events_per_sec").unwrap_or(0.0),
            row.value("ttc").unwrap_or(0.0),
        );
    }

    let mut entry = json!({
        "name": "fig10",
        "rows": serial_rows.len(),
        "serial_secs": serial_secs,
        "points": points,
    });

    let mut total = serial_secs;
    if !opts.serial_only {
        let t1 = Instant::now();
        let parallel_rows =
            figures::fig10_with(&SweepRunner::parallel(), opts.seed, opts.max_tasks);
        let parallel_secs = t1.elapsed().as_secs_f64();
        total += parallel_secs;
        let identical = deterministic_view(&parallel_rows) == deterministic_view(&serial_rows);
        let speedup = serial_secs / parallel_secs.max(1e-12);
        entry["parallel_secs"] = json!(parallel_secs);
        entry["speedup"] = json!(speedup);
        entry["identical"] = json!(identical);
        println!(
            "{:>6}: serial {serial_secs:.3}s  parallel {parallel_secs:.3}s  \
             speedup {speedup:.2}x  identical={identical}",
            "fig10"
        );
        if !identical {
            fail(
                "fig10: parallel rows diverged from serial rows on the \
                 deterministic projection",
            );
        }
    }

    let bench = json!({
        "version": 1,
        "threads": threads,
        "threads_warning": threads_warning,
        "members": 1,
        "sim_threads": 0,
        "seed": opts.seed,
        "max_tasks": opts.max_tasks,
        "figures": [entry],
        "total_secs": total,
    });
    let out = opts.out_path();
    let rendered = serde_json::to_string_pretty(&bench).expect("serialize BENCH.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH.json");
    println!("wrote {out}");

    if let Some(budget) = opts.budget_secs {
        if total > budget {
            fail(format!(
                "scale sweep took {total:.3}s, over the {budget:.3}s wall budget"
            ));
        }
        println!("within wall budget: {total:.3}s <= {budget:.3}s");
    }
    if let Some(path) = &opts.baseline {
        check_baseline(path, "fig10", &serial_rows);
    }
}

/// The `--baseline PATH` perf-regression gate: the committed
/// `BENCH-BASELINE.json` records an events/sec floor per series; the run
/// fails when the measured throughput at the largest sweep point drops
/// more than the file's tolerance below its floor.
fn check_baseline(path: &str, figure: &str, rows: &[Row]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(format!("bad baseline {path}: {e}")));
    let tolerance = baseline["tolerance"].as_f64().unwrap_or(0.25);
    let Some(floors) = baseline["floors"][figure].as_object() else {
        fail(format!("baseline {path} has no floors for {figure}"));
    };
    for (series, floor) in floors {
        let floor = floor
            .as_f64()
            .unwrap_or_else(|| fail(format!("baseline {figure}/{series}: non-numeric floor")));
        let measured = rows
            .iter()
            .filter(|r| r.series == *series)
            .max_by(|a, b| a.x.total_cmp(&b.x))
            .and_then(|r| r.value("events_per_sec"))
            .unwrap_or_else(|| {
                fail(format!(
                    "baseline {figure}/{series}: no measured events/sec in the sweep rows"
                ))
            });
        let min_ok = floor * (1.0 - tolerance);
        if measured < min_ok {
            fail(format!(
                "perf regression: {figure}/{series} measured {measured:.0} events/sec, \
                 below floor {floor:.0} - {:.0}% tolerance = {min_ok:.0}",
                tolerance * 100.0
            ));
        }
        println!(
            "baseline {figure}/{series}: {measured:.0} events/sec >= {min_ok:.0} \
             (floor {floor:.0}, tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
}

/// Wall-clock and throughput summary of one federated sweep leg.
fn fed_leg(opts: &Options, members: usize, drive: DriveMode, label: &str) -> (Vec<Row>, f64) {
    // Points run serially so measured wall-clock isolates the member pool;
    // the rayon sweep axis stays out of the federated timing entirely.
    let t0 = Instant::now();
    let rows = figures::fig10_federated_with(
        &SweepRunner::serial(),
        opts.seed,
        opts.max_tasks,
        members,
        drive,
        opts.sim_threads,
    );
    let secs = t0.elapsed().as_secs_f64();
    for row in &rows {
        println!(
            "{label:>16} {:>4} n={:<8} wall {:>8.3}s  {:>12.0} events  {:>12.0} events/sec",
            row.series,
            row.x,
            row.value("wall_secs").unwrap_or(0.0),
            row.value("events").unwrap_or(0.0),
            row.value("events_per_sec").unwrap_or(0.0),
        );
    }
    (rows, secs)
}

/// The `--members N` mode: the federated fig10 throughput sweep. Each
/// ensemble is late-bound across N simulated clusters, member windows are
/// driven both serially and on the worker pool (the two must agree on the
/// deterministic projection — byte-identical modulo host timing), and
/// events/sec scaling is reported against a single-member baseline
/// (strong scaling: same task counts, N× the clusters).
fn run_fed_scale_sweep(opts: &Options) {
    let threads = sweep_threads();
    let threads_warning = warn_if_single_thread(threads);
    let members = opts.members;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sim_threads = if opts.sim_threads == 0 {
        host_cores
    } else {
        opts.sim_threads
    }
    .clamp(1, members);
    // The member pool only overlaps windows when both the pool and the
    // host offer more than one lane; otherwise parallel-drive wall-clock
    // (and the 1 -> N events/sec scaling) degenerates to serial plus
    // pool overhead, which BENCH.json must record rather than hide.
    let sim_threads_warning = sim_threads.min(host_cores) == 1;
    if sim_threads_warning {
        eprintln!(
            "warning: the federated member pool is effectively serial \
             ({sim_threads} worker(s) on {host_cores} host core(s)); \
             events/sec scaling vs 1 member reflects merge overhead, not \
             parallel speedup"
        );
    }

    let (single_rows, single_secs) = fed_leg(opts, 1, DriveMode::Parallel, "1-member");
    let (serial_rows, serial_secs) = fed_leg(opts, members, DriveMode::Serial, "serial-drive");
    let (parallel_rows, parallel_secs) =
        fed_leg(opts, members, DriveMode::Parallel, "parallel-drive");
    let total = single_secs + serial_secs + parallel_secs;

    let identical = deterministic_view(&parallel_rows) == deterministic_view(&serial_rows);
    let drive_speedup = serial_secs / parallel_secs.max(1e-12);
    println!(
        "fig10_federated: serial-drive {serial_secs:.3}s  parallel-drive \
         {parallel_secs:.3}s  speedup {drive_speedup:.2}x  identical={identical}"
    );
    if !identical {
        fail(
            "fig10_federated: parallel-drive rows diverged from serial-drive \
             rows on the deterministic projection",
        );
    }

    // Strong-scaling ratio per series at the largest common point:
    // events/sec with N members over events/sec with 1 member.
    let eps_at = |rows: &[Row], series: &str| {
        rows.iter()
            .filter(|r| r.series == series)
            .max_by(|a, b| a.x.total_cmp(&b.x))
            .and_then(|r| r.value("events_per_sec"))
            .unwrap_or(0.0)
    };
    let mut scaling = serde_json::Map::new();
    for series in ["eop", "sal"] {
        let base = eps_at(&single_rows, series);
        let fed = eps_at(&parallel_rows, series);
        let ratio = fed / base.max(1e-9);
        println!(
            "{series}: events/sec x{ratio:.2} from 1 -> {members} members \
             ({base:.0} -> {fed:.0})"
        );
        scaling.insert(series.to_string(), json!(ratio));
    }

    let points: Vec<_> = single_rows
        .iter()
        .chain(&serial_rows)
        .chain(&parallel_rows)
        .map(|row| {
            json!({
                "series": row.series,
                "tasks": row.x,
                "members": row.value("members"),
                "ttc": row.value("ttc"),
                "events": row.value("events"),
                "wall_secs": row.value("wall_secs"),
                "events_per_sec": row.value("events_per_sec"),
            })
        })
        .collect();
    let entry = json!({
        "name": "fig10_federated",
        "rows": points.len(),
        "serial_secs": serial_secs,
        "parallel_secs": parallel_secs,
        "single_member_secs": single_secs,
        "speedup": drive_speedup,
        "identical": identical,
        "scaling": scaling,
        "points": points,
    });
    let bench = json!({
        "version": 1,
        "threads": threads,
        "threads_warning": threads_warning,
        "members": members,
        "sim_threads": sim_threads,
        "sim_threads_warning": sim_threads_warning,
        "seed": opts.seed,
        "max_tasks": opts.max_tasks,
        "figures": [entry],
        "total_secs": total,
    });
    let out = opts.out_path();
    let rendered = serde_json::to_string_pretty(&bench).expect("serialize BENCH.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH.json");
    println!("wrote {out}");

    if let Some(budget) = opts.budget_secs {
        if total > budget {
            fail(format!(
                "federated scale sweep took {total:.3}s, over the {budget:.3}s \
                 wall budget"
            ));
        }
        println!("within wall budget: {total:.3}s <= {budget:.3}s");
    }
    if let Some(path) = &opts.baseline {
        check_baseline(path, "fig10_federated", &parallel_rows);
    }
}

/// The `--workload` mode: the fig11 open-loop workload sweep — the
/// synthetic trace served at each admission-slot width on the simulated
/// and two-member federated backends, under the `--policy` admission
/// policy. Each leg runs twice; the replay must be byte-identical
/// (reports and stream JSONL), and every point must hold the `<= 1 µs`
/// cross-check budget. The fifo-vs-fair-share fairness ablation then
/// serves the hot-tenant trace under both policies on the same arrivals.
/// `WORKLOAD.json` and the combined stream JSONL contain only
/// deterministic values, so both files are byte-identical under replay;
/// wall-clock timings go to stdout. With `--baseline`, each leg's
/// events/sec is gated against the file's `fig11` floors.
fn run_workload_sweep(opts: &Options) {
    let (seed, sessions, tenants) = (opts.seed, opts.sessions, opts.tenants);
    let policy = opts.policy;
    let backends = [
        StreamBackend::Simulated,
        StreamBackend::Federated { members: 2 },
    ];
    let mut all_points = Vec::new();
    let mut jsonl = String::new();
    let mut leg_rates = Vec::new();
    let mut total = 0.0f64;
    for backend in backends {
        let label = backend.label();
        let t0 = Instant::now();
        let points = fig11_with_policy(seed, sessions, tenants, backend, policy)
            .unwrap_or_else(|e| fail(format!("fig11 {label}: {e}")));
        let secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let replay = fig11_with_policy(seed, sessions, tenants, backend, policy)
            .unwrap_or_else(|e| fail(format!("fig11 {label} replay: {e}")));
        let replay_secs = t1.elapsed().as_secs_f64();
        total += secs + replay_secs;
        if points != replay {
            fail(format!(
                "fig11 {label}: replay diverged from the first run \
                 (same seed must serve a byte-identical stream)"
            ));
        }
        let mut leg_events = 0u64;
        for p in &points {
            if p.report.max_cross_check_err_secs > 1e-6 {
                fail(format!(
                    "fig11 {label} slots={}: cross-check error {:.3e}s exceeds \
                     the 1e-6s budget",
                    p.slots, p.report.max_cross_check_err_secs
                ));
            }
            leg_events += p.report.total_events;
            println!(
                "{label:>12} slots={:<2} p50 {:>9.1}s  p95 {:>9.1}s  p99 {:>9.1}s  \
                 makespan {:>9.1}s  queue peak {:>4.0}  cc {:.1e}",
                p.slots,
                p.report.latency.p50,
                p.report.latency.p95,
                p.report.latency.p99,
                p.report.makespan_secs,
                p.report.queue_depth_peak,
                p.report.max_cross_check_err_secs,
            );
        }
        let rate = leg_events as f64 / secs.max(1e-12);
        println!(
            "{label:>12}: {sessions} sessions x {} slot widths ({} admission) \
             in {secs:.3}s (+ replay {replay_secs:.3}s, identical)  {rate:.0} events/sec",
            FIG11_SLOTS.len(),
            policy.label(),
        );
        leg_rates.push((label, rate));
        jsonl.push_str(&leg_jsonl(&points));
        all_points.extend(points);
    }

    let t2 = Instant::now();
    let ablation = fairness_ablation_with(seed, sessions, tenants)
        .unwrap_or_else(|e| fail(format!("fairness ablation: {e}")));
    let ablation_replay = fairness_ablation_with(seed, sessions, tenants)
        .unwrap_or_else(|e| fail(format!("fairness ablation replay: {e}")));
    total += t2.elapsed().as_secs_f64();
    if ablation != ablation_replay {
        fail("fairness ablation: replay diverged from the first run");
    }
    println!("fairness ablation (hot-tenant trace, 2 slots):");
    for (label, report) in [("fifo", &ablation.fifo), ("fair-share", &ablation.fair)] {
        println!(
            "{label:>12}: hot-tenant p99 {:>9.1}s  worst light-tenant p99 {:>9.1}s",
            FairnessAblation::hot_p99(report),
            FairnessAblation::light_worst_p99(report),
        );
    }
    let (fifo_light, fair_light) = (
        FairnessAblation::light_worst_p99(&ablation.fifo),
        FairnessAblation::light_worst_p99(&ablation.fair),
    );
    if fair_light > fifo_light {
        fail(format!(
            "fairness ablation: fair-share worsened the worst light-tenant \
             p99 ({fair_light:.1}s vs fifo {fifo_light:.1}s)"
        ));
    }

    let workload = json!({
        "version": 2,
        "seed": seed,
        "sessions": sessions,
        "tenants": tenants,
        "slots": FIG11_SLOTS,
        "policy": policy.label(),
        "points": all_points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        "fairness": ablation.to_json(),
        "checks": {
            "replay_identical": true,
            "cross_check_budget_secs": 1e-6,
            "fair_share_light_tenant_no_worse": true,
        },
    });
    let out = opts.out_path();
    let rendered = serde_json::to_string_pretty(&workload).expect("serialize WORKLOAD.json");
    std::fs::write(&out, rendered + "\n").expect("write WORKLOAD.json");
    println!("wrote {out}");
    let jsonl_path = out
        .strip_suffix(".json")
        .map(|stem| format!("{stem}.jsonl"))
        .unwrap_or_else(|| format!("{out}.jsonl"));
    std::fs::write(&jsonl_path, &jsonl).expect("write workload JSONL");
    println!("wrote {jsonl_path}");

    if let Some(budget) = opts.budget_secs {
        if total > budget {
            fail(format!(
                "workload sweep took {total:.3}s, over the {budget:.3}s wall budget"
            ));
        }
        println!("within wall budget: {total:.3}s <= {budget:.3}s");
    }
    if let Some(path) = &opts.baseline {
        check_workload_baseline(path, &leg_rates);
    }
}

/// The `--workload --serve-scale` mode: the out-of-core bounded-memory
/// proof. Synthetic streams of 10^3 → `--max-sessions` sessions are
/// served end-to-end through `ServiceEngine::run_streaming` (records
/// rendered to a null sink and dropped) on the simulated and two-member
/// federated backends, ascending, recording events/sec, wall-clock, the
/// engine's own peak-residency witness, and the process peak RSS
/// (`VmHWM`) after every point. Because `VmHWM` is monotone, the
/// ascending axis makes the flat-memory comparison valid: the sweep
/// fails unless the final peak stays within 2x the peak measured after
/// the first 10^4-session point — RSS(10^6) <= 2 x RSS(10^4).
fn run_serve_scale_sweep(opts: &Options) {
    let axis = serve_scale_axis(opts.max_sessions);
    let backends = [
        StreamBackend::Simulated,
        StreamBackend::Federated { members: 2 },
    ];
    let mut points = Vec::new();
    let mut leg_rates = Vec::new();
    let mut hwm_at_1e4: Option<u64> = None;
    let mut total = 0.0f64;
    for backend in backends {
        let label = backend.label();
        let mut last_rate = 0.0;
        for &sessions in &axis {
            let p = serve_scale_point(opts.seed, sessions, backend)
                .unwrap_or_else(|e| fail(format!("serve-scale {label} n={sessions}: {e}")));
            total += p.wall_secs;
            last_rate = p.events_per_sec;
            println!(
                "{label:>12} sessions={sessions:<8} wall {:>8.2}s  {:>9.0} events/sec  \
                 peak resident {:>4}  VmHWM {}",
                p.wall_secs,
                p.events_per_sec,
                p.stats.peak_resident_sessions,
                p.vm_hwm_kb
                    .map(|kb| format!("{kb} KiB"))
                    .unwrap_or_else(|| "n/a".into()),
            );
            if p.stats.sessions != sessions {
                fail(format!(
                    "serve-scale {label} n={sessions}: engine served {} sessions",
                    p.stats.sessions
                ));
            }
            if sessions == 10_000 && hwm_at_1e4.is_none() {
                hwm_at_1e4 = p.vm_hwm_kb;
            }
            points.push(p);
        }
        leg_rates.push((label, last_rate));
    }

    let hwm_final = points.last().and_then(|p| p.vm_hwm_kb);
    if let (Some(base), Some(last)) = (hwm_at_1e4, hwm_final) {
        if opts.max_sessions > 10_000 && last > base * 2 {
            fail(format!(
                "serve-scale memory is not flat: final VmHWM {last} KiB exceeds \
                 2x the 10^4-session peak {base} KiB"
            ));
        }
        println!(
            "memory flatness: final VmHWM {last} KiB <= 2 x {base} KiB \
             (10^4-session peak)"
        );
    }

    let report = json!({
        "version": 1,
        "seed": opts.seed,
        "slots": SERVE_SCALE_SLOTS,
        "tenants": SERVE_SCALE_TENANTS,
        "sessions_axis": axis,
        "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        "vm_hwm_kb_at_1e4": hwm_at_1e4,
        "vm_hwm_kb_final": hwm_final,
        "checks": {
            "rss_flatness_factor": 2.0,
            "rss_flat": true,
        },
    });
    let out = opts.out_path();
    let rendered = serde_json::to_string_pretty(&report).expect("serialize serve-scale report");
    std::fs::write(&out, rendered + "\n").expect("write serve-scale report");
    println!("wrote {out}");

    if let Some(budget) = opts.budget_secs {
        if total > budget {
            fail(format!(
                "serve-scale sweep took {total:.3}s, over the {budget:.3}s wall budget"
            ));
        }
        println!("within wall budget: {total:.3}s <= {budget:.3}s");
    }
    if let Some(path) = &opts.baseline {
        check_serve_scale_baseline(path, &leg_rates, hwm_final);
    }
}

/// The serve-scale flavour of the `--baseline` gate: each backend leg's
/// events/sec (largest point) must stay within tolerance of its
/// `floors.serve_scale` floor, and the process's final `VmHWM` must stay
/// under `ceilings.serve_scale_rss_kb` (with the same tolerance as
/// headroom).
fn check_serve_scale_baseline(path: &str, leg_rates: &[(String, f64)], hwm_kb: Option<u64>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(format!("bad baseline {path}: {e}")));
    let tolerance = baseline["tolerance"].as_f64().unwrap_or(0.25);
    let Some(floors) = baseline["floors"]["serve_scale"].as_object() else {
        fail(format!("baseline {path} has no floors for serve_scale"));
    };
    for (series, floor) in floors {
        let floor = floor
            .as_f64()
            .unwrap_or_else(|| fail(format!("baseline serve_scale/{series}: non-numeric floor")));
        let measured = leg_rates
            .iter()
            .find(|(label, _)| label == series)
            .map(|&(_, rate)| rate)
            .unwrap_or_else(|| {
                fail(format!(
                    "baseline serve_scale/{series}: the sweep ran no such backend leg"
                ))
            });
        let min_ok = floor * (1.0 - tolerance);
        if measured < min_ok {
            fail(format!(
                "perf regression: serve_scale/{series} measured {measured:.0} events/sec, \
                 below floor {floor:.0} - {:.0}% tolerance = {min_ok:.0}",
                tolerance * 100.0
            ));
        }
        println!(
            "baseline serve_scale/{series}: {measured:.0} events/sec >= {min_ok:.0} \
             (floor {floor:.0}, tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    if let Some(ceiling) = baseline["ceilings"]["serve_scale_rss_kb"].as_u64() {
        let Some(hwm) = hwm_kb else {
            fail("baseline has an RSS ceiling but VmHWM is unavailable on this host");
        };
        let max_ok = (ceiling as f64 * (1.0 + tolerance)) as u64;
        if hwm > max_ok {
            fail(format!(
                "memory regression: serve-scale VmHWM {hwm} KiB exceeds ceiling \
                 {ceiling} KiB + {:.0}% tolerance = {max_ok} KiB",
                tolerance * 100.0
            ));
        }
        println!(
            "baseline serve_scale RSS: {hwm} KiB <= {max_ok} KiB \
             (ceiling {ceiling} KiB, tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
}

/// The workload flavour of the `--baseline` gate: the committed floors
/// under `floors.fig11` are keyed by backend label, and each serve leg's
/// events/sec must stay within the file's tolerance of its floor.
fn check_workload_baseline(path: &str, leg_rates: &[(String, f64)]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(format!("bad baseline {path}: {e}")));
    let tolerance = baseline["tolerance"].as_f64().unwrap_or(0.25);
    let Some(floors) = baseline["floors"]["fig11"].as_object() else {
        fail(format!("baseline {path} has no floors for fig11"));
    };
    for (series, floor) in floors {
        let floor = floor
            .as_f64()
            .unwrap_or_else(|| fail(format!("baseline fig11/{series}: non-numeric floor")));
        let measured = leg_rates
            .iter()
            .find(|(label, _)| label == series)
            .map(|&(_, rate)| rate)
            .unwrap_or_else(|| {
                fail(format!(
                    "baseline fig11/{series}: the sweep ran no such backend leg"
                ))
            });
        let min_ok = floor * (1.0 - tolerance);
        if measured < min_ok {
            fail(format!(
                "perf regression: fig11/{series} measured {measured:.0} events/sec, \
                 below floor {floor:.0} - {:.0}% tolerance = {min_ok:.0}",
                tolerance * 100.0
            ));
        }
        println!(
            "baseline fig11/{series}: {measured:.0} events/sec >= {min_ok:.0} \
             (floor {floor:.0}, tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
}

fn main() {
    let opts = parse_args();
    if opts.serve_scale {
        run_serve_scale_sweep(&opts);
        return;
    }
    if opts.workload {
        run_workload_sweep(&opts);
        return;
    }
    if opts.members >= 2 {
        run_fed_scale_sweep(&opts);
        return;
    }
    if opts.scale_sweep {
        run_scale_sweep(&opts);
        return;
    }
    let seed = opts.seed;
    let scale = opts.scale;

    type Sweep = (&'static str, Box<dyn Fn(&SweepRunner) -> Vec<Row>>);
    let sweeps: Vec<Sweep> = vec![
        ("fig3", Box::new(move |r| figures::fig3_with(r, seed))),
        ("fig4", Box::new(move |r| figures::fig4_with(r, seed))),
        (
            "fig5",
            Box::new(move |r| figures::fig5_with(r, seed, scale)),
        ),
        (
            "fig6",
            Box::new(move |r| figures::fig6_with(r, seed, scale)),
        ),
        (
            "fig7",
            Box::new(move |r| figures::fig7_with(r, seed, scale)),
        ),
        (
            "fig8",
            Box::new(move |r| figures::fig8_with(r, seed, scale)),
        ),
        (
            "fig9",
            Box::new(move |r| figures::fig9_with(r, seed, scale)),
        ),
        (
            "ablation_exchange",
            Box::new(move |r| figures::ablation_exchange_with(r, seed)),
        ),
        (
            "ablation_overhead",
            Box::new(move |r| figures::ablation_overhead_with(r, seed)),
        ),
        (
            "ablation_faults",
            Box::new(move |r| figures::ablation_faults_with(r, seed)),
        ),
        (
            "ablation_pilots",
            Box::new(move |r| figures::ablation_pilots_with(r, seed)),
        ),
        (
            "ablation_scheduler",
            Box::new(move |r| figures::ablation_scheduler_with(r, seed)),
        ),
        (
            "resilience",
            Box::new(move |r| resilience_sweep_with(r, seed, scale)),
        ),
        (
            "resilience_federated",
            Box::new(move |r| federated_resilience_with(r, seed)),
        ),
    ];

    let threads = sweep_threads();
    let threads_warning = !opts.serial_only && warn_if_single_thread(threads);
    let mut entries = Vec::new();
    let mut total_serial = 0.0f64;
    let mut total_parallel = 0.0f64;
    let mut all_identical = true;

    for (name, sweep) in &sweeps {
        if let Some(only) = &opts.only {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let t0 = Instant::now();
        let serial_rows = sweep(&SweepRunner::serial());
        let serial_secs = t0.elapsed().as_secs_f64();
        total_serial += serial_secs;

        let mut entry = json!({
            "name": *name,
            "rows": serial_rows.len(),
            "serial_secs": serial_secs,
        });
        if opts.serial_only {
            println!(
                "{name:>20}: serial {serial_secs:.3}s ({} rows)",
                serial_rows.len()
            );
        } else {
            let t1 = Instant::now();
            let parallel_rows = sweep(&SweepRunner::parallel());
            let parallel_secs = t1.elapsed().as_secs_f64();
            total_parallel += parallel_secs;
            let identical = parallel_rows == serial_rows;
            all_identical &= identical;
            let speedup = serial_secs / parallel_secs.max(1e-12);
            entry["parallel_secs"] = json!(parallel_secs);
            entry["speedup"] = json!(speedup);
            entry["identical"] = json!(identical);
            println!(
                "{name:>20}: serial {serial_secs:.3}s  parallel {parallel_secs:.3}s  \
                 speedup {speedup:.2}x  identical={identical}"
            );
            if !identical {
                fail(format!("{name}: parallel rows diverged from serial rows"));
            }
        }
        entries.push(entry);
    }

    let mut bench = json!({
        "version": 1,
        "threads": threads,
        "threads_warning": threads_warning,
        "scale": scale,
        "seed": seed,
        "figures": entries,
        "total_serial_secs": total_serial,
    });
    if !opts.serial_only {
        bench["total_parallel_secs"] = json!(total_parallel);
        bench["overall_speedup"] = json!(total_serial / total_parallel.max(1e-12));
        bench["identical"] = json!(all_identical);
        println!(
            "{:>20}: serial {total_serial:.3}s  parallel {total_parallel:.3}s  \
             speedup {:.2}x  ({threads} threads)",
            "total",
            total_serial / total_parallel.max(1e-12),
        );
    }
    let out = opts.out_path();
    let rendered = serde_json::to_string_pretty(&bench).expect("serialize BENCH.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH.json");
    println!("wrote {out}");

    if let Some(path) = &opts.trace {
        // Cross-checked inside: the exported trace always agrees with the
        // accounted overhead breakdown.
        let trace = figures::representative_trace(opts.seed);
        std::fs::write(path, trace).expect("write trace");
        println!("wrote {path}");
    }
}
