//! End-to-end sweep benchmark: times every figure (and ablation) sweep,
//! serial versus parallel, and emits a machine-readable `BENCH.json` so the
//! performance trajectory can be tracked across changes.
//!
//! ```text
//! cargo run --release -p entk-bench --bin bench -- [OPTIONS]
//!
//!   --parallel        time parallel sweeps against the serial baseline
//!                     (the default; kept as an explicit opt-in flag)
//!   --serial          time the serial path only (no comparison)
//!   --scale N         divide fig5–fig9 problem sizes by N   [default: 32]
//!   --seed S          sweep seed                            [default: 2016]
//!   --threads N       worker threads for the parallel mode (sets
//!                     ENTK_THREADS; default: host cores)
//!   --only a,b        run only the named sweeps (e.g. fig3,fig4)
//!   --out PATH        output path                   [default: BENCH.json]
//!   --trace PATH      also write a Chrome trace-event JSON of one
//!                     representative session (open in Perfetto or
//!                     chrome://tracing)
//!   --scale-sweep     run the fig10 throughput scaling sweep instead of
//!                     the figure sweeps: events/sec and wall-clock for
//!                     EoP/SAL ensembles of 10^3 → --max-tasks tasks
//!   --max-tasks N     largest fig10 ensemble            [default: 1000000]
//!   --budget-secs S   fail unless the whole scale sweep finishes within
//!                     S seconds of wall clock (CI scale-smoke assertion)
//! ```
//!
//! Every figure entry records `serial_secs`, `parallel_secs`, `speedup`,
//! and `identical` — whether the parallel rows were bit-for-bit equal to
//! the serial ones (they must always be; see `entk_bench::sweep`). The
//! fig10 rows also carry host wall-clock values, which legitimately differ
//! between runs; their identity check compares the deterministic
//! projection (`entk_bench::deterministic_view`) instead.

use entk_bench::{
    deterministic_view, federated_resilience_with, figures, resilience_sweep_with, Row, SweepRunner,
};
use serde_json::json;
use std::time::Instant;

struct Options {
    serial_only: bool,
    scale: usize,
    seed: u64,
    only: Option<Vec<String>>,
    out: String,
    trace: Option<String>,
    scale_sweep: bool,
    max_tasks: usize,
    budget_secs: Option<f64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        serial_only: false,
        scale: 32,
        seed: 2016,
        only: None,
        out: "BENCH.json".to_string(),
        trace: None,
        scale_sweep: false,
        max_tasks: 1_000_000,
        budget_secs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--parallel" => opts.serial_only = false,
            "--serial" => opts.serial_only = true,
            "--scale" => opts.scale = value("--scale").parse().expect("--scale: integer"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--threads" => std::env::set_var("ENTK_THREADS", value("--threads")),
            "--only" => {
                opts.only = Some(
                    value("--only")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--out" => opts.out = value("--out"),
            "--trace" => opts.trace = Some(value("--trace")),
            "--scale-sweep" => opts.scale_sweep = true,
            "--max-tasks" => {
                opts.max_tasks = value("--max-tasks").parse().expect("--max-tasks: integer")
            }
            "--budget-secs" => {
                opts.budget_secs = Some(value("--budget-secs").parse().expect("--budget-secs: f64"))
            }
            other => panic!("unknown argument {other:?} (see --help in the module docs)"),
        }
    }
    opts
}

/// Warns when the parallel sweeps have a single worker (serial in
/// disguise); returns whether the warning fired so BENCH.json records it.
fn warn_if_single_thread(threads: usize) -> bool {
    if threads == 1 {
        eprintln!(
            "warning: rayon pool has 1 worker thread; parallel timings will \
             match serial ones (set --threads or ENTK_THREADS on a multi-core \
             host)"
        );
    }
    threads == 1
}

/// The `--scale-sweep` mode: the fig10 throughput scaling figure —
/// events/sec and wall-clock for EoP/SAL ensembles from 10^3 up to
/// `--max-tasks` tasks, with serial/parallel identity on the deterministic
/// projection of each row (wall-clock values legitimately vary run to run).
fn run_scale_sweep(opts: &Options) {
    let threads = rayon::current_num_threads();
    let threads_warning = warn_if_single_thread(threads);

    let t0 = Instant::now();
    let serial_rows = figures::fig10_with(&SweepRunner::serial(), opts.seed, opts.max_tasks);
    let serial_secs = t0.elapsed().as_secs_f64();

    let points: Vec<_> = serial_rows
        .iter()
        .map(|row| {
            json!({
                "series": row.series,
                "tasks": row.x,
                "ttc": row.value("ttc"),
                "events": row.value("events"),
                "wall_secs": row.value("wall_secs"),
                "events_per_sec": row.value("events_per_sec"),
            })
        })
        .collect();
    for row in &serial_rows {
        println!(
            "{:>6} n={:<8} wall {:>8.3}s  {:>12.0} events  {:>12.0} events/sec  ttc {:.1}",
            row.series,
            row.x,
            row.value("wall_secs").unwrap_or(0.0),
            row.value("events").unwrap_or(0.0),
            row.value("events_per_sec").unwrap_or(0.0),
            row.value("ttc").unwrap_or(0.0),
        );
    }

    let mut entry = json!({
        "name": "fig10",
        "rows": serial_rows.len(),
        "serial_secs": serial_secs,
        "points": points,
    });

    let mut total = serial_secs;
    if !opts.serial_only {
        let t1 = Instant::now();
        let parallel_rows =
            figures::fig10_with(&SweepRunner::parallel(), opts.seed, opts.max_tasks);
        let parallel_secs = t1.elapsed().as_secs_f64();
        total += parallel_secs;
        let identical = deterministic_view(&parallel_rows) == deterministic_view(&serial_rows);
        let speedup = serial_secs / parallel_secs.max(1e-12);
        entry["parallel_secs"] = json!(parallel_secs);
        entry["speedup"] = json!(speedup);
        entry["identical"] = json!(identical);
        println!(
            "{:>6}: serial {serial_secs:.3}s  parallel {parallel_secs:.3}s  \
             speedup {speedup:.2}x  identical={identical}",
            "fig10"
        );
        assert!(
            identical,
            "fig10: parallel rows diverged from serial rows on the \
             deterministic projection"
        );
    }

    let bench = json!({
        "version": 1,
        "threads": threads,
        "threads_warning": threads_warning,
        "seed": opts.seed,
        "max_tasks": opts.max_tasks,
        "figures": [entry],
        "total_secs": total,
    });
    let rendered = serde_json::to_string_pretty(&bench).expect("serialize BENCH.json");
    std::fs::write(&opts.out, rendered + "\n").expect("write BENCH.json");
    println!("wrote {}", opts.out);

    if let Some(budget) = opts.budget_secs {
        assert!(
            total <= budget,
            "scale sweep took {total:.3}s, over the {budget:.3}s wall budget"
        );
        println!("within wall budget: {total:.3}s <= {budget:.3}s");
    }
}

fn main() {
    let opts = parse_args();
    if opts.scale_sweep {
        run_scale_sweep(&opts);
        return;
    }
    let seed = opts.seed;
    let scale = opts.scale;

    type Sweep = (&'static str, Box<dyn Fn(&SweepRunner) -> Vec<Row>>);
    let sweeps: Vec<Sweep> = vec![
        ("fig3", Box::new(move |r| figures::fig3_with(r, seed))),
        ("fig4", Box::new(move |r| figures::fig4_with(r, seed))),
        (
            "fig5",
            Box::new(move |r| figures::fig5_with(r, seed, scale)),
        ),
        (
            "fig6",
            Box::new(move |r| figures::fig6_with(r, seed, scale)),
        ),
        (
            "fig7",
            Box::new(move |r| figures::fig7_with(r, seed, scale)),
        ),
        (
            "fig8",
            Box::new(move |r| figures::fig8_with(r, seed, scale)),
        ),
        (
            "fig9",
            Box::new(move |r| figures::fig9_with(r, seed, scale)),
        ),
        (
            "ablation_exchange",
            Box::new(move |r| figures::ablation_exchange_with(r, seed)),
        ),
        (
            "ablation_overhead",
            Box::new(move |r| figures::ablation_overhead_with(r, seed)),
        ),
        (
            "ablation_faults",
            Box::new(move |r| figures::ablation_faults_with(r, seed)),
        ),
        (
            "ablation_pilots",
            Box::new(move |r| figures::ablation_pilots_with(r, seed)),
        ),
        (
            "ablation_scheduler",
            Box::new(move |r| figures::ablation_scheduler_with(r, seed)),
        ),
        (
            "resilience",
            Box::new(move |r| resilience_sweep_with(r, seed, scale)),
        ),
        (
            "resilience_federated",
            Box::new(move |r| federated_resilience_with(r, seed)),
        ),
    ];

    let threads = rayon::current_num_threads();
    let threads_warning = !opts.serial_only && warn_if_single_thread(threads);
    let mut entries = Vec::new();
    let mut total_serial = 0.0f64;
    let mut total_parallel = 0.0f64;
    let mut all_identical = true;

    for (name, sweep) in &sweeps {
        if let Some(only) = &opts.only {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let t0 = Instant::now();
        let serial_rows = sweep(&SweepRunner::serial());
        let serial_secs = t0.elapsed().as_secs_f64();
        total_serial += serial_secs;

        let mut entry = json!({
            "name": *name,
            "rows": serial_rows.len(),
            "serial_secs": serial_secs,
        });
        if opts.serial_only {
            println!(
                "{name:>20}: serial {serial_secs:.3}s ({} rows)",
                serial_rows.len()
            );
        } else {
            let t1 = Instant::now();
            let parallel_rows = sweep(&SweepRunner::parallel());
            let parallel_secs = t1.elapsed().as_secs_f64();
            total_parallel += parallel_secs;
            let identical = parallel_rows == serial_rows;
            all_identical &= identical;
            let speedup = serial_secs / parallel_secs.max(1e-12);
            entry["parallel_secs"] = json!(parallel_secs);
            entry["speedup"] = json!(speedup);
            entry["identical"] = json!(identical);
            println!(
                "{name:>20}: serial {serial_secs:.3}s  parallel {parallel_secs:.3}s  \
                 speedup {speedup:.2}x  identical={identical}"
            );
            assert!(identical, "{name}: parallel rows diverged from serial rows");
        }
        entries.push(entry);
    }

    let mut bench = json!({
        "version": 1,
        "threads": threads,
        "threads_warning": threads_warning,
        "scale": scale,
        "seed": seed,
        "figures": entries,
        "total_serial_secs": total_serial,
    });
    if !opts.serial_only {
        bench["total_parallel_secs"] = json!(total_parallel);
        bench["overall_speedup"] = json!(total_serial / total_parallel.max(1e-12));
        bench["identical"] = json!(all_identical);
        println!(
            "{:>20}: serial {total_serial:.3}s  parallel {total_parallel:.3}s  \
             speedup {:.2}x  ({threads} threads)",
            "total",
            total_serial / total_parallel.max(1e-12),
        );
    }
    let rendered = serde_json::to_string_pretty(&bench).expect("serialize BENCH.json");
    std::fs::write(&opts.out, rendered + "\n").expect("write BENCH.json");
    println!("wrote {}", opts.out);

    if let Some(path) = &opts.trace {
        // Cross-checked inside: the exported trace always agrees with the
        // accounted overhead breakdown.
        let trace = figures::representative_trace(opts.seed);
        std::fs::write(path, trace).expect("write trace");
        println!("wrote {path}");
    }
}
