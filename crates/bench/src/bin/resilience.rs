//! Resilience-sweep harness with built-in determinism checks, run by CI's
//! `resilience-smoke` job at reduced scale.
//!
//! ```text
//! cargo run --release -p entk-bench --bin resilience -- [OPTIONS]
//!
//!   --scale N     divide ensemble sizes by N            [default: 8]
//!   --seed S      sweep seed                            [default: 2016]
//!   --backend B   simulated | federated          [default: simulated]
//!   --out PATH    output path                [default: RESILIENCE.json]
//! ```
//!
//! Three checks must hold (the process asserts them, so CI fails loudly):
//!
//! 1. **Replay** — running the sweep twice with the same seed yields
//!    byte-identical JSON rows.
//! 2. **Zero-rate is free** — rate-0 rows with a fault injector installed
//!    equal the rows of a platform with no injector at all.
//! 3. **Parallel equals serial** — fanning the sweep across cores changes
//!    nothing about its output.
//!
//! `--backend federated` swaps the single-cluster sweep for the federated
//! two-cluster points (one member crash-heavy, one clean) and asserts the
//! replay and parallel checks on those rows; the zero-rate check is
//! specific to the task-failure injector and does not apply.

use entk_bench::{
    baseline_rows, federated_resilience_with, resilience, resilience_sweep_with, SweepRunner,
};
use serde_json::json;

/// One-line diagnostic + non-zero exit for determinism-check failures, so
/// CI logs end with the reason instead of a panic backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

struct Options {
    scale: usize,
    seed: u64,
    backend: String,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: 8,
        seed: 2016,
        backend: "simulated".to_string(),
        out: "RESILIENCE.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => opts.scale = value("--scale").parse().expect("--scale: integer"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--backend" => opts.backend = value("--backend"),
            "--out" => opts.out = value("--out"),
            other => panic!("unknown argument {other:?} (see module docs)"),
        }
    }
    assert!(
        matches!(opts.backend.as_str(), "simulated" | "federated"),
        "unknown backend {:?} (use \"simulated\" or \"federated\")",
        opts.backend
    );
    opts
}

/// The `--backend federated` mode: paired clean / crash-heavy federation
/// rows with the replay and parallel determinism checks.
fn run_federated(opts: &Options) {
    let seed = opts.seed;

    let serial = federated_resilience_with(&SweepRunner::serial(), seed);
    let replay = federated_resilience_with(&SweepRunner::serial(), seed);
    let replay_identical = serial == replay;
    if !replay_identical {
        fail("same seed must replay to byte-identical federated rows");
    }

    let parallel = federated_resilience_with(&SweepRunner::parallel(), seed);
    let parallel_identical = serial == parallel;
    if !parallel_identical {
        fail("parallel federated sweep diverged from serial rows");
    }

    for row in &serial {
        println!(
            "series={} mtbf={} {}",
            row.series,
            row.x,
            row.values
                .iter()
                .map(|(n, v)| format!("{n}={v:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let out = json!({
        "version": 1,
        "backend": "federated",
        "seed": seed,
        "retries": resilience::FED_RETRIES,
        "crash_mtbf_secs": resilience::FED_CRASH_MTBF_SECS,
        "patterns": resilience::PATTERNS,
        "rows": serial,
        "checks": {
            "replay_identical": replay_identical,
            "parallel_identical": parallel_identical,
        },
    });
    let rendered = serde_json::to_string_pretty(&out).expect("serialize RESILIENCE.json");
    std::fs::write(&opts.out, rendered + "\n").expect("write RESILIENCE.json");
    println!("wrote {} (all determinism checks passed)", opts.out);
}

fn main() {
    let opts = parse_args();
    if opts.backend == "federated" {
        run_federated(&opts);
        return;
    }
    let (seed, scale) = (opts.seed, opts.scale);

    let serial = resilience_sweep_with(&SweepRunner::serial(), seed, scale);
    let replay = resilience_sweep_with(&SweepRunner::serial(), seed, scale);
    let rows_json = serde_json::to_string(&serial).expect("serialize rows");
    let replay_identical = rows_json == serde_json::to_string(&replay).expect("serialize rows");
    if !replay_identical {
        fail("same seed must replay to byte-identical rows");
    }

    let parallel = resilience_sweep_with(&SweepRunner::parallel(), seed, scale);
    let parallel_identical = serial == parallel;
    if !parallel_identical {
        fail("parallel sweep diverged from serial rows");
    }

    let baseline = baseline_rows(seed, scale);
    let zero_rows: Vec<_> = serial.iter().filter(|r| r.x == 0.0).cloned().collect();
    let zero_rate_matches_baseline = zero_rows == baseline;
    if !zero_rate_matches_baseline {
        fail("rate-0 rows with an injector must equal the no-injector baseline");
    }

    for row in &serial {
        println!(
            "series={} rate={} {}",
            row.series,
            row.x,
            row.values
                .iter()
                .map(|(n, v)| format!("{n}={v:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let out = json!({
        "version": 1,
        "backend": "simulated",
        "seed": seed,
        "scale": scale,
        "rates": resilience::RATES,
        "retries": resilience::RETRIES,
        "patterns": resilience::PATTERNS,
        "rows": serial,
        "checks": {
            "replay_identical": replay_identical,
            "parallel_identical": parallel_identical,
            "zero_rate_matches_baseline": zero_rate_matches_baseline,
        },
    });
    let rendered = serde_json::to_string_pretty(&out).expect("serialize RESILIENCE.json");
    std::fs::write(&opts.out, rendered + "\n").expect("write RESILIENCE.json");
    println!("wrote {} (all determinism checks passed)", opts.out);
}
