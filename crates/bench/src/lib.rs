//! # entk-bench — figure harnesses for the EnTK paper reproduction
//!
//! One runner per figure of the paper's evaluation (Figs. 3–9), plus
//! ablations over the design choices DESIGN.md calls out. Binaries under
//! `src/bin/` print each figure's series; criterion benches under
//! `benches/` time the same code paths at reduced scale.

#![warn(missing_docs)]

pub mod figures;
pub mod resilience;
pub mod sweep;
pub mod workload;

pub use figures::{
    ablation_exchange, ablation_exchange_with, ablation_faults, ablation_faults_with,
    ablation_overhead, ablation_overhead_with, ablation_pilots, ablation_pilots_with,
    ablation_scheduler, ablation_scheduler_with, deterministic_view, fig10, fig10_with, fig3,
    fig3_with, fig4, fig4_with, fig5, fig5_with, fig6, fig6_with, fig7, fig7_with, fig8, fig8_with,
    fig9, fig9_with, print_rows, Row, FIG10_TRACE_LIMIT, NONDETERMINISTIC_VALUES,
};
pub use resilience::{
    baseline_rows, federated_point, federated_resilience, federated_resilience_with,
    resilience_point, resilience_sweep, resilience_sweep_with,
};
pub use sweep::{SweepMode, SweepRunner};
pub use workload::{
    fairness_ablation_with, fig11_with, fig11_with_policy, leg_jsonl, serve_scale_axis,
    serve_scale_point, vm_hwm_kb, FairnessAblation, ServeScalePoint, WorkloadPoint,
    FIG11_HALF_LIFE_SECS, FIG11_SESSIONS, FIG11_SLOTS, FIG11_TENANTS, SERVE_SCALE_SLOTS,
    SERVE_SCALE_TENANTS,
};
