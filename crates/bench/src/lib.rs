//! # entk-bench — figure harnesses for the EnTK paper reproduction
//!
//! One runner per figure of the paper's evaluation (Figs. 3–9), plus
//! ablations over the design choices DESIGN.md calls out. Binaries under
//! `src/bin/` print each figure's series; criterion benches under
//! `benches/` time the same code paths at reduced scale.

#![warn(missing_docs)]

pub mod figures;

pub use figures::{
    ablation_exchange, ablation_faults, ablation_overhead, ablation_pilots, ablation_scheduler, fig3, fig4, fig5, fig6, fig7, fig8,
    fig9, print_rows, Row,
};
