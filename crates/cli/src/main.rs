//! `entk` — run Ensemble Toolkit workloads from JSON specs.
//!
//! ```text
//! entk run <spec.json> [--json] [--trace <path>]
//!                                   execute a workload, print the report;
//!                                   --trace writes the session's event
//!                                   trace (Chrome trace-event JSON for
//!                                   Perfetto / chrome://tracing, or JSONL
//!                                   when the path ends in .jsonl)
//! entk run --workload <spec.json> [--json] [--trace <path>]
//!                                   serve an open-loop session stream
//!                                   described by a stream spec (see
//!                                   `entk_workload::StreamSpec`): per-
//!                                   tenant latency percentiles, queue
//!                                   depth, makespan; --trace writes the
//!                                   stream JSONL (one line per session)
//! entk check <spec.json>            validate a spec without running it
//! entk kernels                      list available kernel plugins
//! ```

use entk_cli::WorkloadSpec;
use entk_workload::StreamSpec;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let usage = "usage: entk run [--workload] <spec.json> [--json] [--trace <path>]";
            let as_json = args.iter().any(|a| a == "--json");
            let workload = args.iter().any(|a| a == "--workload");
            let trace_pos = args.iter().position(|a| a == "--trace");
            let trace_path = match trace_pos {
                Some(i) => match args.get(i + 1) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("{usage}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            // The spec path is the first non-flag argument after `run`
            // that is not the value of --trace.
            let Some(path) = args
                .iter()
                .enumerate()
                .skip(1)
                .find(|(i, a)| !a.starts_with("--") && trace_pos != Some(i.wrapping_sub(1)))
                .map(|(_, a)| a)
            else {
                eprintln!("{usage}");
                return ExitCode::FAILURE;
            };
            if workload {
                return run_stream(path, as_json, trace_path);
            }
            match load(path).and_then(|spec| spec.run_traced().map_err(|e| e.to_string())) {
                Ok((report, telemetry)) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&report).expect("report serializes")
                        );
                    } else {
                        print!("{report}");
                    }
                    if let Some(trace_path) = trace_path {
                        match telemetry {
                            Some(t) => {
                                let body = if trace_path.ends_with(".jsonl") {
                                    t.tracer.to_jsonl()
                                } else {
                                    t.tracer.to_chrome_json()
                                };
                                if let Err(e) = std::fs::write(&trace_path, body) {
                                    eprintln!("error: writing {trace_path:?}: {e}");
                                    return ExitCode::FAILURE;
                                }
                                eprintln!("trace written to {trace_path}");
                            }
                            None => eprintln!(
                                "note: --trace ignored (local backend has no virtual-time trace)"
                            ),
                        }
                    }
                    if report.failed_tasks > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: entk check <spec.json>");
                return ExitCode::FAILURE;
            };
            match load(path) {
                Ok(spec) => {
                    // Building the pattern exercises shape validation.
                    let pattern = spec.build_pattern();
                    println!(
                        "ok: {} on {} ({} cores, backend {})",
                        pattern.name(),
                        spec.resource.name,
                        spec.resource.cores,
                        spec.backend
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("kernels") => {
            for name in entk_kernels::KernelRegistry::with_builtins().names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: entk <run|check|kernels> [args]");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<WorkloadSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    WorkloadSpec::from_json(&text).map_err(|e| e.to_string())
}

/// The `run --workload` mode: serve the open-loop session stream a
/// [`StreamSpec`] describes and print the stream report.
fn run_stream(path: &str, as_json: bool, trace_path: Option<String>) -> ExitCode {
    let outcome = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {path:?}: {e}"))
        .and_then(|text| StreamSpec::from_json(&text).map_err(|e| e.to_string()))
        .and_then(|spec| spec.run().map_err(|e| e.to_string()));
    let out = match outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = &out.report;
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(r).expect("stream report serializes")
        );
    } else {
        println!(
            "stream: {} sessions from {} tenants on {} ({}, {} slots)",
            r.sessions, r.tenants, r.resource, r.backend, r.slots
        );
        println!(
            "  makespan {:.1}s  latency p50 {:.1}s p95 {:.1}s p99 {:.1}s",
            r.makespan_secs, r.latency.p50, r.latency.p95, r.latency.p99
        );
        println!(
            "  queue depth peak {:.0} mean {:.2}  events {}  cross-check {:.1e}s",
            r.queue_depth_peak, r.queue_depth_mean, r.total_events, r.max_cross_check_err_secs
        );
        println!("  stream fingerprint {}", r.stream_fp);
        for t in &r.per_tenant {
            println!(
                "  tenant {:>4}: {:>3} sessions  p50 {:>8.1}s  p95 {:>8.1}s  p99 {:>8.1}s",
                t.tenant, t.sessions, t.p50, t.p95, t.p99
            );
        }
    }
    if let Some(trace_path) = trace_path {
        if let Err(e) = std::fs::write(&trace_path, &out.jsonl) {
            eprintln!("error: writing {trace_path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("stream JSONL written to {trace_path}");
    }
    ExitCode::SUCCESS
}
