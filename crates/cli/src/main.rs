//! `entk` — run Ensemble Toolkit workloads from JSON specs.
//!
//! ```text
//! entk run <spec.json> [--json] [--trace <path>]
//!                                   execute a workload, print the report;
//!                                   --trace writes the session's event
//!                                   trace (Chrome trace-event JSON for
//!                                   Perfetto / chrome://tracing, or JSONL
//!                                   when the path ends in .jsonl)
//! entk check <spec.json>            validate a spec without running it
//! entk kernels                      list available kernel plugins
//! ```

use entk_cli::WorkloadSpec;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: entk run <spec.json> [--json] [--trace <path>]");
                return ExitCode::FAILURE;
            };
            let as_json = args.iter().any(|a| a == "--json");
            let trace_path = match args.iter().position(|a| a == "--trace") {
                Some(i) => match args.get(i + 1) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("usage: entk run <spec.json> [--json] [--trace <path>]");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            match load(path).and_then(|spec| spec.run_traced().map_err(|e| e.to_string())) {
                Ok((report, telemetry)) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&report).expect("report serializes")
                        );
                    } else {
                        print!("{report}");
                    }
                    if let Some(trace_path) = trace_path {
                        match telemetry {
                            Some(t) => {
                                let body = if trace_path.ends_with(".jsonl") {
                                    t.tracer.to_jsonl()
                                } else {
                                    t.tracer.to_chrome_json()
                                };
                                if let Err(e) = std::fs::write(&trace_path, body) {
                                    eprintln!("error: writing {trace_path:?}: {e}");
                                    return ExitCode::FAILURE;
                                }
                                eprintln!("trace written to {trace_path}");
                            }
                            None => eprintln!(
                                "note: --trace ignored (local backend has no virtual-time trace)"
                            ),
                        }
                    }
                    if report.failed_tasks > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: entk check <spec.json>");
                return ExitCode::FAILURE;
            };
            match load(path) {
                Ok(spec) => {
                    // Building the pattern exercises shape validation.
                    let pattern = spec.build_pattern();
                    println!(
                        "ok: {} on {} ({} cores, backend {})",
                        pattern.name(),
                        spec.resource.name,
                        spec.resource.cores,
                        spec.backend
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("kernels") => {
            for name in entk_kernels::KernelRegistry::with_builtins().names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: entk <run|check|kernels> [args]");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<WorkloadSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    WorkloadSpec::from_json(&text).map_err(|e| e.to_string())
}
