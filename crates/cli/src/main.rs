//! `entk` — run Ensemble Toolkit workloads from JSON specs.
//!
//! ```text
//! entk run <spec.json> [--json] [--trace <path>]
//!                                   execute a workload, print the report;
//!                                   --trace writes the session's event
//!                                   trace (Chrome trace-event JSON for
//!                                   Perfetto / chrome://tracing, or JSONL
//!                                   when the path ends in .jsonl)
//! entk run --workload <spec.json> [--json] [--trace <path>]
//!                                   serve an open-loop session stream
//!                                   described by a stream spec (see
//!                                   `entk_workload::StreamSpec`): per-
//!                                   tenant latency percentiles, queue
//!                                   depth, makespan; --trace writes the
//!                                   stream JSONL (one line per session)
//! entk serve <spec.json> [--policy <name>] [--strict] [--json]
//!            [--jsonl <path>] [--stream]
//!            [--checkpoint-at <K> --checkpoint <path>] [--resume <path>]
//!                                   run the multi-tenant session service
//!                                   over a stream spec: live admission
//!                                   under the chosen policy, per-session
//!                                   failure records, and arrival-boundary
//!                                   checkpoint/restore. --checkpoint-at K
//!                                   stops at the K-th arrival boundary
//!                                   and writes the checkpoint (plus the
//!                                   emitted JSONL prefix); --resume picks
//!                                   a checkpoint up and emits the exact
//!                                   byte-identical suffix. --stream serves
//!                                   out-of-core: arrivals pulled lazily,
//!                                   records written to --jsonl and
//!                                   dropped, memory bounded by the
//!                                   look-ahead window — byte-identical
//!                                   JSONL to the buffered serve
//! entk check <spec.json>            validate a spec without running it
//! entk kernels                      list available kernel plugins
//! ```

use entk_cli::WorkloadSpec;
use entk_core::ComponentSpec;
use entk_workload::{
    admission_policies, ServiceCheckpoint, ServiceEngine, StreamSpec, WorkloadReport,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let usage = "usage: entk run [--workload] <spec.json> [--json] [--trace <path>]";
            let as_json = args.iter().any(|a| a == "--json");
            let workload = args.iter().any(|a| a == "--workload");
            let trace_pos = args.iter().position(|a| a == "--trace");
            let trace_path = match trace_pos {
                Some(i) => match args.get(i + 1) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("{usage}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            // The spec path is the first non-flag argument after `run`
            // that is not the value of --trace.
            let Some(path) = args
                .iter()
                .enumerate()
                .skip(1)
                .find(|(i, a)| !a.starts_with("--") && trace_pos != Some(i.wrapping_sub(1)))
                .map(|(_, a)| a)
            else {
                eprintln!("{usage}");
                return ExitCode::FAILURE;
            };
            if workload {
                return run_stream(path, as_json, trace_path);
            }
            match load(path).and_then(|spec| spec.run_traced().map_err(|e| e.to_string())) {
                Ok((report, telemetry)) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&report).expect("report serializes")
                        );
                    } else {
                        print!("{report}");
                    }
                    if let Some(trace_path) = trace_path {
                        match telemetry {
                            Some(t) => {
                                let body = if trace_path.ends_with(".jsonl") {
                                    t.tracer.to_jsonl()
                                } else {
                                    t.tracer.to_chrome_json()
                                };
                                if let Err(e) = std::fs::write(&trace_path, body) {
                                    eprintln!("error: writing {trace_path:?}: {e}");
                                    return ExitCode::FAILURE;
                                }
                                eprintln!("trace written to {trace_path}");
                            }
                            None => eprintln!(
                                "note: --trace ignored (local backend has no virtual-time trace)"
                            ),
                        }
                    }
                    if report.failed_tasks > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("serve") => serve_stream(&args[1..]),
        Some("check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: entk check <spec.json>");
                return ExitCode::FAILURE;
            };
            match load(path) {
                Ok(spec) => {
                    // Building the pattern exercises shape validation.
                    let pattern = spec.build_pattern();
                    println!(
                        "ok: {} on {} ({} cores, backend {})",
                        pattern.name(),
                        spec.resource.name,
                        spec.resource.cores,
                        spec.backend
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("kernels") => {
            for name in entk_kernels::KernelRegistry::with_builtins().names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: entk <run|serve|check|kernels> [args]");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<WorkloadSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    WorkloadSpec::from_json(&text).map_err(|e| e.to_string())
}

/// The `run --workload` mode: serve the open-loop session stream a
/// [`StreamSpec`] describes and print the stream report.
fn run_stream(path: &str, as_json: bool, trace_path: Option<String>) -> ExitCode {
    let outcome = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {path:?}: {e}"))
        .and_then(|text| StreamSpec::from_json(&text).map_err(|e| e.to_string()))
        .and_then(|spec| {
            let mut sinks = spec.build_sinks().map_err(|e| e.to_string())?;
            let out = spec.run().map_err(|e| e.to_string())?;
            entk_workload::dispatch(&out, &mut sinks).map_err(|e| e.to_string())?;
            Ok(out)
        });
    let out = match outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_stream_report(&out.report, as_json);
    if let Some(trace_path) = trace_path {
        if let Err(e) = std::fs::write(&trace_path, &out.jsonl) {
            eprintln!("error: writing {trace_path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("stream JSONL written to {trace_path}");
    }
    ExitCode::SUCCESS
}

fn print_stream_report(r: &WorkloadReport, as_json: bool) {
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(r).expect("stream report serializes")
        );
        return;
    }
    println!(
        "stream: {} sessions from {} tenants on {} ({}, {} slots, {} admission)",
        r.sessions, r.tenants, r.resource, r.backend, r.slots, r.policy
    );
    println!(
        "  status: {} ok, {} partial, {} failed, {} rejected",
        r.ok_sessions, r.partial_sessions, r.failed_sessions, r.rejected_sessions
    );
    println!(
        "  makespan {:.1}s  latency p50 {:.1}s p95 {:.1}s p99 {:.1}s",
        r.makespan_secs, r.latency.p50, r.latency.p95, r.latency.p99
    );
    println!(
        "  queue depth peak {:.0} mean {:.2}  events {}  cross-check {:.1e}s",
        r.queue_depth_peak, r.queue_depth_mean, r.total_events, r.max_cross_check_err_secs
    );
    println!("  stream fingerprint {}", r.stream_fp);
    for t in &r.per_tenant {
        println!(
            "  tenant {:>4}: {:>3} sessions  p50 {:>8.1}s  p95 {:>8.1}s  p99 {:>8.1}s",
            t.tenant, t.sessions, t.p50, t.p95, t.p99
        );
    }
}

/// The `serve` subcommand: the session service with policy override,
/// strictness, checkpoint/resume, and bounded-memory streaming.
fn serve_stream(args: &[String]) -> ExitCode {
    let usage = "usage: entk serve <spec.json> [--policy <name>] [--strict] [--json] \
                 [--jsonl <path>] [--stream] \
                 [--checkpoint-at <K> --checkpoint <path>] [--resume <path>]";
    let as_json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    let streaming = args.iter().any(|a| a == "--stream");
    let value_of = |flag: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == flag) {
            Some(i) => args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{flag} needs a value")),
            None => Ok(None),
        }
    };
    let parsed = (|| -> Result<ExitCode, String> {
        let policy_arg = value_of("--policy")?;
        let jsonl_path = value_of("--jsonl")?;
        let checkpoint_path = value_of("--checkpoint")?;
        let resume_path = value_of("--resume")?;
        let checkpoint_at = value_of("--checkpoint-at")?
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--checkpoint-at needs an arrival index, got {v:?}"))
            })
            .transpose()?;
        let value_positions: Vec<usize> = [
            "--policy",
            "--jsonl",
            "--checkpoint",
            "--resume",
            "--checkpoint-at",
        ]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();
        let spec_path = args
            .iter()
            .enumerate()
            .find(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
            .map(|(_, a)| a.clone())
            .ok_or_else(|| usage.to_string())?;

        let text = std::fs::read_to_string(&spec_path)
            .map_err(|e| format!("reading {spec_path:?}: {e}"))?;
        let mut spec = StreamSpec::from_json(&text).map_err(|e| e.to_string())?;
        if let Some(p) = policy_arg {
            // Any registered admission policy; typos list the valid names.
            if !admission_policies().contains(&p) {
                return Err(admission_policies().unknown(&p).to_string());
            }
            spec.policy = ComponentSpec::named(p);
        }
        if strict {
            spec.strict = true;
        }
        let config = spec.service_config().map_err(|e| e.to_string())?;
        // Arrivals are never materialized: the engine pulls the spec's
        // source lazily, which is what keeps `--stream` serves flat in
        // memory no matter how long the trace is.
        let arrivals = spec.source_stream().map_err(|e| e.to_string())?;

        if streaming {
            if resume_path.is_some() || checkpoint_at.is_some() || checkpoint_path.is_some() {
                return Err("--stream is incompatible with checkpoint/resume".to_string());
            }
            if !spec.sinks.is_empty() {
                eprintln!(
                    "note: spec sinks ignored under --stream (records are dropped \
                     after emission; use --jsonl for the row stream)"
                );
            }
            let path = jsonl_path.ok_or_else(|| "--stream needs --jsonl <path>".to_string())?;
            let file =
                std::fs::File::create(&path).map_err(|e| format!("creating {path:?}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            let engine = ServiceEngine::new(config, arrivals).map_err(|e| e.to_string())?;
            let stats = engine.run_streaming(&mut out).map_err(|e| e.to_string())?;
            std::io::Write::flush(&mut out).map_err(|e| format!("writing {path:?}: {e}"))?;
            if as_json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&stats).expect("serve stats serialize")
                );
            } else {
                println!(
                    "streamed: {} sessions from {} tenants \
                     ({} ok / {} partial / {} failed / {} rejected)",
                    stats.sessions,
                    stats.tenants,
                    stats.ok_sessions,
                    stats.partial_sessions,
                    stats.failed_sessions,
                    stats.rejected_sessions
                );
                println!(
                    "  makespan {:.1}s  latency mean {:.1}s max {:.1}s",
                    stats.makespan_secs, stats.mean_latency_secs, stats.max_latency_secs
                );
                println!(
                    "  peak resident sessions {}  stream fingerprint {}",
                    stats.peak_resident_sessions, stats.stream_fp
                );
            }
            eprintln!("stream JSONL written to {path}");
            return Ok(ExitCode::SUCCESS);
        }

        let mut engine = match &resume_path {
            Some(path) => {
                let ckpt_text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading checkpoint {path:?}: {e}"))?;
                let ckpt = ServiceCheckpoint::from_json(&ckpt_text).map_err(|e| e.to_string())?;
                ServiceEngine::restore(config, arrivals, &ckpt).map_err(|e| e.to_string())?
            }
            None => ServiceEngine::new(config, arrivals).map_err(|e| e.to_string())?,
        };

        if let Some(k) = checkpoint_at {
            let ckpt_path = checkpoint_path
                .ok_or_else(|| "--checkpoint-at needs --checkpoint <path>".to_string())?;
            engine.run_to_boundary(k).map_err(|e| e.to_string())?;
            std::fs::write(&ckpt_path, engine.checkpoint().to_json())
                .map_err(|e| format!("writing checkpoint {ckpt_path:?}: {e}"))?;
            if let Some(path) = jsonl_path {
                std::fs::write(&path, engine.emitted_jsonl())
                    .map_err(|e| format!("writing {path:?}: {e}"))?;
                eprintln!("emitted JSONL prefix written to {path}");
            }
            eprintln!(
                "checkpoint at arrival boundary {} written to {ckpt_path} \
                 ({} sessions emitted)",
                engine.ingested(),
                engine.emitted_jsonl().lines().count()
            );
            return Ok(ExitCode::SUCCESS);
        }

        let mut sinks = spec.build_sinks().map_err(|e| e.to_string())?;
        let out = engine.run().map_err(|e| e.to_string())?;
        entk_workload::dispatch(&out, &mut sinks).map_err(|e| e.to_string())?;
        print_stream_report(&out.report, as_json);
        if let Some(path) = jsonl_path {
            // A resumed service writes exactly the suffix after its
            // checkpoint, so prefix + suffix concatenate to the full
            // stream byte-for-byte.
            let body = if resume_path.is_some() {
                &out.suffix_jsonl
            } else {
                &out.jsonl
            };
            std::fs::write(&path, body).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("stream JSONL written to {path}");
        }
        Ok(ExitCode::SUCCESS)
    })();
    match parsed {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{usage}");
            ExitCode::FAILURE
        }
    }
}
