//! JSON workload specifications: declare a resource, a pattern, and the
//! kernels of each stage; the CLI compiles the spec into toolkit calls.
//!
//! Kernel arguments support placeholder substitution so one template
//! describes a whole ensemble: any string value `"$index"`, `"$iteration"`,
//! `"$cycle"`, `"$replica"`, `"$temperature"`, or `"$n_sims"` is replaced
//! by the corresponding number at task-creation time.

use entk_core::prelude::*;
use entk_core::EntkError;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Top-level workload specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Resource request.
    pub resource: ResourceSpec,
    /// Backend selection: `"simulated"` (default), `"local"`, or
    /// `"federated"`.
    #[serde(default = "default_backend")]
    pub backend: String,
    /// Additional member clusters for the federated backend; the top-level
    /// `resource` is the first member. Ignored by the other backends.
    #[serde(default)]
    pub federation: Vec<ResourceSpec>,
    /// Master seed for simulated runs.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// The pattern to run.
    pub pattern: PatternSpec,
    /// Simulated-backend tuning (ignored by the local backend).
    #[serde(default)]
    pub tuning: TuningSpec,
}

/// Optional simulated-backend tuning knobs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TuningSpec {
    /// Batch-scheduler plugin: any registered scheduler name (`fifo`,
    /// `backfill`, `fair_share`, `priority_aging`, `sjf`, `round_robin`),
    /// either bare or as `{"name", "params"}` with typed params.
    #[serde(default)]
    pub batch_policy: Option<entk_core::ComponentSpec>,
    /// Split the request across this many pilots with late binding.
    #[serde(default)]
    pub pilots: Option<usize>,
    /// Extra queue-wait seconds per requested core.
    #[serde(default)]
    pub queue_wait_per_core: Option<f64>,
    /// Competing background load on the machine.
    #[serde(default)]
    pub background: Option<BackgroundSpec>,
    /// Retry budget for failed tasks.
    #[serde(default)]
    pub retries: Option<u32>,
}

/// Background-load description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundSpec {
    /// Mean inter-arrival of competing jobs (seconds, exponential).
    pub mean_interarrival_secs: f64,
    /// Cores per competing job.
    pub cores: usize,
    /// Runtime of competing jobs in seconds.
    pub runtime_secs: f64,
    /// Jobs already queued at submission time.
    #[serde(default)]
    pub initial_jobs: usize,
}

fn default_backend() -> String {
    "simulated".into()
}

fn default_seed() -> u64 {
    2016
}

/// Resource request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Resource label (`"xsede.comet"`, `"local"`, …).
    pub name: String,
    /// Cores to acquire.
    pub cores: usize,
    /// Wall time in seconds.
    pub walltime_secs: u64,
}

/// A kernel invocation template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Registry name, e.g. `"md.amber"`.
    pub plugin: String,
    /// Arguments; string values may contain placeholders.
    #[serde(default)]
    pub args: Value,
    /// Cores per task.
    #[serde(default = "one")]
    pub cores: usize,
}

fn one() -> usize {
    1
}

/// The supported pattern shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PatternSpec {
    /// A bag of `n` independent tasks.
    Bag {
        /// Task count.
        n: usize,
        /// Kernel template (placeholder: `$index`).
        kernel: KernelSpec,
    },
    /// An ensemble of `n` pipelines with one kernel per stage.
    Pipelines {
        /// Pipeline count.
        n: usize,
        /// One kernel template per stage (placeholder: `$index`).
        stages: Vec<KernelSpec>,
    },
    /// A simulation-analysis loop.
    Sal {
        /// Loop iterations.
        iterations: usize,
        /// Simulations per iteration.
        sims: usize,
        /// Simulation kernel (placeholders: `$index`, `$iteration`).
        simulation: KernelSpec,
        /// Analysis kernel (placeholders: `$iteration`, `$n_sims`).
        analysis: KernelSpec,
    },
    /// Temperature replica exchange.
    Exchange {
        /// Replica count (= ladder size).
        replicas: usize,
        /// MD+exchange cycles.
        cycles: usize,
        /// Coldest ladder temperature.
        t_min: f64,
        /// Hottest ladder temperature.
        t_max: f64,
        /// MD segment kernel (placeholders: `$replica`, `$cycle`,
        /// `$temperature`).
        kernel: KernelSpec,
    },
}

/// Substitutes `$name` placeholders in string values by numbers.
fn substitute(value: &Value, vars: &[(&str, f64)]) -> Value {
    match value {
        Value::String(s) => {
            for (name, v) in vars {
                if s == &format!("${name}") {
                    // Integral values stay integers for u64-typed kernel args.
                    if v.fract() == 0.0 && *v >= 0.0 {
                        return json!(*v as u64);
                    }
                    return json!(v);
                }
            }
            value.clone()
        }
        Value::Array(items) => Value::Array(items.iter().map(|i| substitute(i, vars)).collect()),
        Value::Object(map) => Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), substitute(v, vars)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Resolves a declared batch-policy plugin through the scheduler registry:
/// validates the name and params up front (unknown names list every
/// registered scheduler), then hands the spec to the backend config, which
/// builds one fresh scheduler per cluster at run time.
fn resolve_batch_policy(
    policy: &entk_core::ComponentSpec,
) -> Result<entk_core::ComponentSpec, EntkError> {
    entk_core::registry::schedulers().build(policy, &())?;
    Ok(policy.clone())
}

fn bind(spec: &KernelSpec, vars: &[(&str, f64)]) -> KernelCall {
    let args = if spec.args.is_null() {
        json!({})
    } else {
        substitute(&spec.args, vars)
    };
    KernelCall::new(spec.plugin.clone(), args).with_cores(spec.cores)
}

impl WorkloadSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        serde_json::from_str(text).map_err(|e| EntkError::Usage(format!("bad spec: {e}")))
    }

    /// Compiles the pattern description into an executable pattern.
    pub fn build_pattern(&self) -> Box<dyn ExecutionPattern + Send> {
        match self.pattern.clone() {
            PatternSpec::Bag { n, kernel } => Box::new(BagOfTasks::new(n, move |i| {
                bind(&kernel, &[("index", i as f64)])
            })),
            PatternSpec::Pipelines { n, stages } => {
                let labels: Vec<String> = (0..stages.len()).map(|s| format!("stage-{s}")).collect();
                Box::new(
                    EnsembleOfPipelines::new(n, stages.len(), move |p, s| {
                        bind(&stages[s], &[("index", p as f64)])
                    })
                    .with_stage_labels(labels),
                )
            }
            PatternSpec::Sal {
                iterations,
                sims,
                simulation,
                analysis,
            } => Box::new(SimulationAnalysisLoop::new(
                iterations,
                sims,
                move |iter, i| {
                    bind(
                        &simulation,
                        &[("index", i as f64), ("iteration", iter as f64)],
                    )
                },
                move |iter, outs| {
                    vec![bind(
                        &analysis,
                        &[("iteration", iter as f64), ("n_sims", outs.len() as f64)],
                    )]
                },
            )),
            PatternSpec::Exchange {
                replicas,
                cycles,
                t_min,
                t_max,
                kernel,
            } => Box::new(EnsembleExchange::new(
                replicas,
                cycles,
                TemperatureLadder::geometric(replicas, t_min, t_max),
                move |r, c, t| {
                    bind(
                        &kernel,
                        &[
                            ("replica", r as f64),
                            ("cycle", c as f64),
                            ("temperature", t),
                        ],
                    )
                },
            )),
        }
    }

    /// Runs the workload and returns the report.
    pub fn run(&self) -> Result<entk_core::ExecutionReport, EntkError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Like [`WorkloadSpec::run`], but also returns the session telemetry —
    /// the cross-layer event trace and metrics — on the simulated backend.
    /// `None` on the local backend, which executes in real time and has no
    /// virtual-clock trace.
    pub fn run_traced(
        &self,
    ) -> Result<(entk_core::ExecutionReport, Option<entk_sim::Telemetry>), EntkError> {
        let mut pattern = self.build_pattern();
        match self.backend.as_str() {
            "simulated" => {
                let config = ResourceConfig::new(
                    self.resource.name.clone(),
                    self.resource.cores,
                    SimDuration::from_secs(self.resource.walltime_secs),
                );
                let mut sim = SimulatedConfig {
                    seed: self.seed,
                    ..Default::default()
                };
                if let Some(policy) = &self.tuning.batch_policy {
                    sim.scheduler = Some(resolve_batch_policy(policy)?);
                }
                if let Some(n) = self.tuning.pilots {
                    sim.pilot_strategy = if n <= 1 {
                        entk_core::PilotStrategy::single()
                    } else {
                        entk_core::PilotStrategy::split(n)
                    };
                }
                if let Some(retries) = self.tuning.retries {
                    sim.fault = entk_core::FaultConfig::retries(retries);
                }
                if self.tuning.queue_wait_per_core.is_some() || self.tuning.background.is_some() {
                    let mut platform = entk_cluster::PlatformSpec::by_name(&self.resource.name)
                        .ok_or_else(|| {
                            EntkError::Resource(format!(
                                "unknown resource {:?}",
                                self.resource.name
                            ))
                        })?;
                    if let Some(per_core) = self.tuning.queue_wait_per_core {
                        platform.queue_wait_per_core = per_core;
                    }
                    sim.platform = Some(platform);
                }
                if let Some(bg) = &self.tuning.background {
                    sim.background_load = Some(entk_cluster::BackgroundLoad {
                        mean_interarrival_secs: bg.mean_interarrival_secs,
                        cores: entk_sim::Dist::Constant(bg.cores as f64),
                        runtime: entk_sim::Dist::Constant(bg.runtime_secs),
                        initial_jobs: bg.initial_jobs,
                    });
                }
                run_simulated_traced(config, sim, pattern.as_mut())
                    .map(|(report, telemetry)| (report, Some(telemetry)))
            }
            "federated" => {
                if self.tuning.queue_wait_per_core.is_some() || self.tuning.background.is_some() {
                    return Err(EntkError::Usage(
                        "queue_wait_per_core/background tuning is not supported on the \
                         federated backend"
                            .to_string(),
                    ));
                }
                let mut config = FederatedConfig {
                    seed: self.seed,
                    ..Default::default()
                };
                if let Some(policy) = &self.tuning.batch_policy {
                    config.scheduler = Some(resolve_batch_policy(policy)?);
                }
                if let Some(retries) = self.tuning.retries {
                    config.fault = entk_core::FaultConfig::retries(retries);
                }
                config.clusters = std::iter::once(&self.resource)
                    .chain(self.federation.iter())
                    .map(|r| {
                        let mut member = ClusterSpec::new(
                            r.name.clone(),
                            r.cores,
                            SimDuration::from_secs(r.walltime_secs),
                        );
                        if let Some(n) = self.tuning.pilots {
                            member.pilots = n.max(1);
                        }
                        member
                    })
                    .collect();
                run_federated_traced(config, pattern.as_mut())
                    .map(|(report, telemetry)| (report, Some(telemetry)))
            }
            "local" => {
                let mut handle = ResourceHandle::local(self.resource.cores);
                handle.allocate()?;
                let report = handle.run(pattern.as_mut())?;
                handle.deallocate()?;
                Ok((report, None))
            }
            other => Err(EntkError::Usage(format!(
                "unknown backend {other:?} (use \"simulated\", \"local\", or \"federated\")"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_substitution_types() {
        let v = json!({ "seed": "$index", "temperature": "$temperature", "keep": "plain" });
        let out = substitute(&v, &[("index", 3.0), ("temperature", 1.25)]);
        assert_eq!(out["seed"], 3); // integral → u64
        assert_eq!(out["temperature"], 1.25);
        assert_eq!(out["keep"], "plain");
    }

    #[test]
    fn substitution_recurses_into_arrays() {
        let v = json!([{ "x": "$index" }, "$index"]);
        let out = substitute(&v, &[("index", 7.0)]);
        assert_eq!(out[0]["x"], 7);
        assert_eq!(out[1], 7);
    }

    #[test]
    fn parses_a_full_spec() {
        let text = r#"{
            "resource": { "name": "xsede.comet", "cores": 24, "walltime_secs": 3600 },
            "pattern": {
                "kind": "pipelines",
                "n": 24,
                "stages": [
                    { "plugin": "misc.mkfile", "args": { "bytes": 1024 } },
                    { "plugin": "misc.ccount", "args": { "bytes": 1024 } }
                ]
            }
        }"#;
        let spec = WorkloadSpec::from_json(text).unwrap();
        assert_eq!(spec.backend, "simulated");
        assert_eq!(spec.seed, 2016);
        let report = spec.run().unwrap();
        assert_eq!(report.task_count(), 48);
        assert_eq!(report.failed_tasks, 0);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(WorkloadSpec::from_json("{}").is_err());
        assert!(WorkloadSpec::from_json("not json").is_err());
        let bad_backend = r#"{
            "resource": { "name": "local", "cores": 2, "walltime_secs": 10 },
            "backend": "cloud",
            "pattern": { "kind": "bag", "n": 1,
                         "kernel": { "plugin": "misc.sleep", "args": { "secs": 0.1 } } }
        }"#;
        let spec = WorkloadSpec::from_json(bad_backend).unwrap();
        assert!(spec.run().is_err());
    }

    #[test]
    fn federated_spec_spans_member_clusters() {
        let text = r#"{
            "resource": { "name": "xsede.comet", "cores": 16, "walltime_secs": 100000 },
            "backend": "federated",
            "seed": 9,
            "federation": [
                { "name": "xsede.stampede", "cores": 16, "walltime_secs": 100000 }
            ],
            "tuning": { "retries": 2 },
            "pattern": { "kind": "bag", "n": 48,
                         "kernel": { "plugin": "misc.sleep", "args": { "secs": 10.0 } } }
        }"#;
        let spec = WorkloadSpec::from_json(text).unwrap();
        let (report, telemetry) = spec.run_traced().unwrap();
        assert_eq!(report.resource, "federated:xsede.comet+xsede.stampede");
        assert_eq!(report.cores, 32);
        assert_eq!(report.task_count(), 48);
        assert_eq!(report.failed_tasks, 0);
        // Federated runs are simulated, so the virtual-time trace exists.
        assert!(telemetry.is_some());
    }

    #[test]
    fn sal_spec_runs_with_placeholders() {
        let text = r#"{
            "resource": { "name": "xsede.stampede", "cores": 8, "walltime_secs": 100000 },
            "seed": 7,
            "pattern": {
                "kind": "sal",
                "iterations": 2,
                "sims": 8,
                "simulation": { "plugin": "md.amber",
                                "args": { "steps": 300, "seed": "$index" } },
                "analysis": { "plugin": "ana.coco", "args": { "n_sims": "$n_sims" } }
            }
        }"#;
        let report = WorkloadSpec::from_json(text).unwrap().run().unwrap();
        assert_eq!(report.task_count(), 2 * 9);
        assert_eq!(report.failed_tasks, 0);
    }

    #[test]
    fn exchange_spec_uses_ladder_temperatures() {
        let text = r#"{
            "resource": { "name": "lsu.supermic", "cores": 4, "walltime_secs": 100000 },
            "pattern": {
                "kind": "exchange",
                "replicas": 4,
                "cycles": 2,
                "t_min": 0.8,
                "t_max": 2.0,
                "kernel": { "plugin": "md.amber",
                            "args": { "steps": 300, "n_atoms": 200,
                                       "temperature": "$temperature",
                                       "seed": "$replica" } }
            }
        }"#;
        let report = WorkloadSpec::from_json(text).unwrap().run().unwrap();
        assert_eq!(
            report
                .tasks
                .iter()
                .filter(|t| t.stage == "simulation")
                .count(),
            8
        );
        assert_eq!(report.failed_tasks, 0);
    }
}

#[cfg(test)]
mod tuning_tests {
    use super::*;

    #[test]
    fn tuned_spec_runs_under_contention() {
        let text = r#"{
            "resource": { "name": "xsede.comet", "cores": 48, "walltime_secs": 1000000 },
            "seed": 5,
            "tuning": {
                "batch_policy": "backfill",
                "pilots": 4,
                "queue_wait_per_core": 1.0,
                "retries": 2,
                "background": {
                    "mean_interarrival_secs": 300.0,
                    "cores": 24,
                    "runtime_secs": 120.0,
                    "initial_jobs": 1
                }
            },
            "pattern": { "kind": "bag", "n": 32,
                         "kernel": { "plugin": "misc.sleep", "args": { "secs": 10.0 } } }
        }"#;
        let spec = WorkloadSpec::from_json(text).unwrap();
        let report = spec.run().unwrap();
        assert_eq!(report.task_count(), 32);
        assert_eq!(report.failed_tasks, 0);
        // Contention + per-core queue wait visible in the resource wait.
        assert!(report.overheads.resource_wait.as_secs_f64() > 10.0);
    }

    #[test]
    fn unknown_batch_policy_is_rejected() {
        let text = r#"{
            "resource": { "name": "local", "cores": 2, "walltime_secs": 100 },
            "tuning": { "batch_policy": "priority" },
            "pattern": { "kind": "bag", "n": 1,
                         "kernel": { "plugin": "misc.sleep", "args": { "secs": 0.1 } } }
        }"#;
        let spec = WorkloadSpec::from_json(text).unwrap();
        assert!(spec.run().is_err());
    }

    #[test]
    fn tuning_defaults_to_empty() {
        let text = r#"{
            "resource": { "name": "local", "cores": 2, "walltime_secs": 100 },
            "pattern": { "kind": "bag", "n": 1,
                         "kernel": { "plugin": "misc.sleep", "args": { "secs": 0.1 } } }
        }"#;
        let spec = WorkloadSpec::from_json(text).unwrap();
        assert!(spec.tuning.batch_policy.is_none());
        assert!(spec.tuning.background.is_none());
    }
}
