//! # entk-cli — JSON workload runner for the Ensemble Toolkit
//!
//! Declares workloads as JSON (resource + pattern + kernel templates with
//! `$placeholder` substitution) and runs them on the simulated or local
//! backend. See `examples/specs/` for ready-made specs and the `entk`
//! binary for the command-line interface.

#![warn(missing_docs)]

pub mod spec;

pub use spec::{BackgroundSpec, KernelSpec, PatternSpec, ResourceSpec, TuningSpec, WorkloadSpec};
