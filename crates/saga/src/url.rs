//! Resource URLs selecting a SAGA adapter and target machine.
//!
//! Mirrors SAGA's adapter-selection-by-scheme: `batch+sim://xsede.comet`
//! picks the simulated batch adapter targeting the Comet model, while
//! `fork://localhost` picks real in-process execution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which adapter family a URL selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Simulated batch system (discrete-event cluster model).
    BatchSim,
    /// Real in-process execution on the local host.
    Fork,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::BatchSim => write!(f, "batch+sim"),
            Scheme::Fork => write!(f, "fork"),
        }
    }
}

/// A parsed resource URL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUrl {
    /// Adapter selector.
    pub scheme: Scheme,
    /// Target host/machine label, e.g. `xsede.comet`.
    pub host: String,
}

/// Error from parsing a resource URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlParseError(pub String);

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid resource URL: {}", self.0)
    }
}

impl std::error::Error for UrlParseError {}

impl FromStr for ResourceUrl {
    type Err = UrlParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme_str, rest) = s
            .split_once("://")
            .ok_or_else(|| UrlParseError(format!("missing '://' in {s:?}")))?;
        let scheme = match scheme_str {
            "batch+sim" | "slurm+sim" | "pbs+sim" | "sim" => Scheme::BatchSim,
            "fork" | "local" => Scheme::Fork,
            other => return Err(UrlParseError(format!("unknown scheme {other:?}"))),
        };
        let host = rest.trim_end_matches('/');
        if host.is_empty() {
            return Err(UrlParseError(format!("missing host in {s:?}")));
        }
        Ok(ResourceUrl {
            scheme,
            host: host.to_string(),
        })
    }
}

impl fmt::Display for ResourceUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sim_and_fork_urls() {
        let u: ResourceUrl = "batch+sim://xsede.comet".parse().unwrap();
        assert_eq!(u.scheme, Scheme::BatchSim);
        assert_eq!(u.host, "xsede.comet");

        let u: ResourceUrl = "fork://localhost".parse().unwrap();
        assert_eq!(u.scheme, Scheme::Fork);
    }

    #[test]
    fn scheme_aliases_are_accepted() {
        for s in [
            "slurm+sim://supermic",
            "pbs+sim://x",
            "sim://y",
            "local://z",
        ] {
            assert!(s.parse::<ResourceUrl>().is_ok(), "{s}");
        }
    }

    #[test]
    fn rejects_malformed_urls() {
        assert!("comet".parse::<ResourceUrl>().is_err());
        assert!("http://x".parse::<ResourceUrl>().is_err());
        assert!("fork://".parse::<ResourceUrl>().is_err());
    }

    #[test]
    fn display_roundtrips() {
        let u: ResourceUrl = "batch+sim://lsu.supermic/".parse().unwrap();
        assert_eq!(u.to_string(), "batch+sim://lsu.supermic");
    }
}
