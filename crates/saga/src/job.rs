//! SAGA job handles and the SAGA job state model.

use crate::description::JobDescription;
use entk_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a SAGA job within one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SagaJobId(pub u64);

impl fmt::Display for SagaJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "saga.job.{:06}", self.0)
    }
}

/// SAGA job states (GFD.90 model, without `Suspended` which no adapter here
/// produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Created, not yet accepted by the backend.
    New,
    /// Accepted; waiting for resources.
    Pending,
    /// Executing.
    Running,
    /// Finished successfully.
    Done,
    /// Cancelled by the user.
    Canceled,
    /// Failed (including wall-time kills).
    Failed,
}

impl JobState {
    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Canceled | JobState::Failed)
    }

    /// Whether `self -> next` is legal in the SAGA state diagram.
    pub fn can_transition_to(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (New, Pending)
                | (New, Failed)
                | (New, Canceled)
                | (Pending, Running)
                | (Pending, Canceled)
                | (Pending, Failed)
                | (Running, Done)
                | (Running, Canceled)
                | (Running, Failed)
        )
    }
}

/// A state-change notification delivered to the submitting layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobUpdate {
    /// The job.
    pub id: SagaJobId,
    /// New state.
    pub state: JobState,
    /// When it changed.
    pub time: SimTime,
    /// Optional adapter detail (e.g. failure reason).
    pub detail: Option<String>,
    /// Cores lost to a node crash while the job keeps running. When set,
    /// `state` repeats the job's current state rather than a transition.
    pub shrunk_by: Option<usize>,
}

/// A SAGA job record held by a service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Job id.
    pub id: SagaJobId,
    /// Submitted description.
    pub description: JobDescription,
    /// Current state.
    pub state: JobState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Time execution began.
    pub started_at: Option<SimTime>,
    /// Time a terminal state was reached.
    pub finished_at: Option<SimTime>,
}

impl Job {
    /// Creates a new job record in state `New`.
    pub fn new(id: SagaJobId, description: JobDescription, now: SimTime) -> Self {
        Job {
            id,
            description,
            state: JobState::New,
            submitted_at: now,
            started_at: None,
            finished_at: None,
        }
    }

    /// Applies a transition, panicking on illegal ones (simulator invariant).
    pub fn transition(&mut self, next: JobState, now: SimTime) {
        assert!(
            self.state.can_transition_to(next),
            "illegal SAGA job transition {:?} -> {:?} for {}",
            self.state,
            next,
            self.id
        );
        self.state = next;
        match next {
            JobState::Running => self.started_at = Some(now),
            s if s.is_terminal() => self.finished_at = Some(now),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::SimDuration;

    #[test]
    fn lifecycle_happy_path() {
        let jd = JobDescription::new("agent", 4, SimDuration::from_secs(60));
        let mut job = Job::new(SagaJobId(0), jd, SimTime::ZERO);
        job.transition(JobState::Pending, SimTime::ZERO);
        job.transition(JobState::Running, SimTime::from_secs(5));
        job.transition(JobState::Done, SimTime::from_secs(50));
        assert_eq!(job.started_at, Some(SimTime::from_secs(5)));
        assert_eq!(job.finished_at, Some(SimTime::from_secs(50)));
    }

    #[test]
    #[should_panic(expected = "illegal SAGA job transition")]
    fn done_is_terminal() {
        let jd = JobDescription::new("agent", 4, SimDuration::from_secs(60));
        let mut job = Job::new(SagaJobId(0), jd, SimTime::ZERO);
        job.transition(JobState::Pending, SimTime::ZERO);
        job.transition(JobState::Running, SimTime::ZERO);
        job.transition(JobState::Done, SimTime::ZERO);
        job.transition(JobState::Running, SimTime::ZERO);
    }

    #[test]
    fn every_terminal_state_is_reachable() {
        use JobState::*;
        for (path, end) in [
            (vec![Pending, Running, Done], Done),
            (vec![Pending, Canceled], Canceled),
            (vec![Pending, Running, Failed], Failed),
            (vec![Failed], Failed),
        ] {
            let jd = JobDescription::new("x", 1, SimDuration::from_secs(1));
            let mut job = Job::new(SagaJobId(0), jd, SimTime::ZERO);
            for s in path {
                job.transition(s, SimTime::ZERO);
            }
            assert_eq!(job.state, end);
            assert!(job.state.is_terminal());
        }
    }
}
