//! The `fork://` SAGA adapter: real in-process execution.
//!
//! Jobs are Rust closures executed on host threads, gated by a core-slot
//! semaphore so that at most `cores` worth of jobs run concurrently — the
//! same admission discipline a pilot agent applies on a compute node. Used
//! by the toolkit's *local* backend to run kernels for real.

use crate::job::{JobState, SagaJobId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Payload executed by a fork job. Returns `Err(reason)` to fail the job.
pub type ForkPayload = Box<dyn FnOnce() -> Result<(), String> + Send + 'static>;

/// Completion report for a fork job.
#[derive(Debug, Clone, PartialEq)]
pub struct ForkCompletion {
    /// The job.
    pub id: SagaJobId,
    /// `Done` or `Failed`.
    pub state: JobState,
    /// Failure reason, if failed.
    pub error: Option<String>,
    /// Wall-clock execution time in seconds.
    pub wall_secs: f64,
}

/// Counting semaphore over "core slots".
struct CoreSlots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl CoreSlots {
    fn new(n: usize) -> Self {
        CoreSlots {
            free: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, n: usize) {
        let mut free = self.free.lock();
        while *free < n {
            self.cv.wait(&mut free);
        }
        *free -= n;
    }

    fn release(&self, n: usize) {
        let mut free = self.free.lock();
        *free += n;
        self.cv.notify_all();
    }
}

/// A local job service running closures on real threads.
pub struct ForkJobService {
    slots: Arc<CoreSlots>,
    total_cores: usize,
    states: Arc<Mutex<HashMap<SagaJobId, JobState>>>,
    completions_tx: Sender<ForkCompletion>,
    completions_rx: Receiver<ForkCompletion>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_id: Mutex<u64>,
}

impl ForkJobService {
    /// Creates a service with `cores` concurrently usable core slots.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "fork service needs at least one core");
        let (tx, rx) = unbounded();
        ForkJobService {
            slots: Arc::new(CoreSlots::new(cores)),
            total_cores: cores,
            states: Arc::new(Mutex::new(HashMap::new())),
            completions_tx: tx,
            completions_rx: rx,
            handles: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        }
    }

    /// Total core slots.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Submits a closure job occupying `cores` slots. The job starts as soon
    /// as slots free up (FIFO fairness is not guaranteed, as on a real node).
    pub fn submit(&self, cores: usize, payload: ForkPayload) -> SagaJobId {
        assert!(
            cores > 0 && cores <= self.total_cores,
            "job needs 1..={} cores, asked for {cores}",
            self.total_cores
        );
        let id = {
            let mut next = self.next_id.lock();
            let id = SagaJobId(*next);
            *next += 1;
            id
        };
        self.states.lock().insert(id, JobState::Pending);

        let slots = Arc::clone(&self.slots);
        let states = Arc::clone(&self.states);
        let tx = self.completions_tx.clone();
        let handle = std::thread::spawn(move || {
            slots.acquire(cores);
            states.lock().insert(id, JobState::Running);
            let start = std::time::Instant::now();
            // A panicking payload must still produce a completion, or the
            // submitting side would wait forever.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(payload))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "payload panicked".into());
                    Err(format!("panic: {msg}"))
                });
            let wall_secs = start.elapsed().as_secs_f64();
            slots.release(cores);
            let (state, error) = match result {
                Ok(()) => (JobState::Done, None),
                Err(e) => (JobState::Failed, Some(e)),
            };
            states.lock().insert(id, state);
            // Receiver may be gone during shutdown; ignore send failures.
            let _ = tx.send(ForkCompletion {
                id,
                state,
                error,
                wall_secs,
            });
        });
        self.handles.lock().push(handle);
        id
    }

    /// Current state of a job.
    pub fn state(&self, id: SagaJobId) -> Option<JobState> {
        self.states.lock().get(&id).copied()
    }

    /// Blocks until the next job completes.
    pub fn wait_any(&self) -> ForkCompletion {
        self.completions_rx
            .recv()
            .expect("completion channel never closes while service lives")
    }

    /// Non-blocking poll for a completion.
    pub fn try_wait_any(&self) -> Option<ForkCompletion> {
        self.completions_rx.try_recv().ok()
    }

    /// Waits for all submitted jobs to finish and joins worker threads.
    pub fn drain(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ForkJobService {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_report_done() {
        let svc = ForkJobService::new(2);
        let id = svc.submit(1, Box::new(|| Ok(())));
        let c = svc.wait_any();
        assert_eq!(c.id, id);
        assert_eq!(c.state, JobState::Done);
        assert_eq!(svc.state(id), Some(JobState::Done));
    }

    #[test]
    fn failures_carry_reason() {
        let svc = ForkJobService::new(1);
        svc.submit(1, Box::new(|| Err("kernel exploded".into())));
        let c = svc.wait_any();
        assert_eq!(c.state, JobState::Failed);
        assert_eq!(c.error.as_deref(), Some("kernel exploded"));
    }

    #[test]
    fn concurrency_never_exceeds_core_slots() {
        let cores = 3;
        let svc = ForkJobService::new(cores);
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            svc.submit(
                1,
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        for _ in 0..20 {
            svc.wait_any();
        }
        assert!(peak.load(Ordering::SeqCst) <= cores);
    }

    #[test]
    fn multicore_jobs_reserve_multiple_slots() {
        let svc = ForkJobService::new(4);
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            // Each job takes 3 of 4 slots: they must serialize.
            svc.submit(
                3,
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    active.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        for _ in 0..6 {
            svc.wait_any();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn oversized_job_is_rejected() {
        let svc = ForkJobService::new(2);
        svc.submit(3, Box::new(|| Ok(())));
    }

    #[test]
    fn drain_joins_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let svc = ForkJobService::new(4);
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            svc.submit(
                1,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        svc.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;

    #[test]
    fn panicking_payload_reports_failure_instead_of_hanging() {
        let svc = ForkJobService::new(1);
        svc.submit(1, Box::new(|| panic!("kernel blew up")));
        let c = svc.wait_any();
        assert_eq!(c.state, JobState::Failed);
        assert!(c.error.as_deref().unwrap().contains("kernel blew up"));
        // The slot was released: another job still runs.
        svc.submit(1, Box::new(|| Ok(())));
        assert_eq!(svc.wait_any().state, JobState::Done);
    }
}
