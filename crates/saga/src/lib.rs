//! # entk-saga — standardized job-submission layer (SAGA/JSDL stand-in)
//!
//! EnTK (paper §III-C1) submits work through the SAGA API, which follows the
//! Job Submission Description Language. This crate reproduces that layer:
//! uniform [`JobDescription`]s, the SAGA job state model, and two adapters
//! selected by resource URL — `batch+sim://<machine>` targeting the
//! discrete-event cluster model, and `fork://localhost` executing real
//! closures on host threads.

#![warn(missing_docs)]

pub mod description;
pub mod fork_service;
pub mod job;
pub mod sim_service;
pub mod url;

pub use description::JobDescription;
pub use fork_service::{ForkCompletion, ForkJobService, ForkPayload};
pub use job::{Job, JobState, JobUpdate, SagaJobId};
pub use sim_service::SimJobService;
pub use url::{ResourceUrl, Scheme, UrlParseError};
