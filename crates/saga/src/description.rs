//! JSDL-style job descriptions (SAGA job model).
//!
//! The paper (§III-C1) notes EnTK "follows a standard job submission
//! language" — the Job Submission Description Language — through the SAGA
//! API. This module models the JSDL attributes that matter for pilot jobs.

use entk_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A JSDL-style description of a job to submit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobDescription {
    /// Executable path or logical name.
    pub executable: String,
    /// Command-line arguments.
    pub arguments: Vec<String>,
    /// Environment variables.
    pub environment: Vec<(String, String)>,
    /// Working directory on the target resource.
    pub working_directory: String,
    /// Total CPU cores requested (JSDL `TotalCPUCount`).
    pub total_cpu_count: usize,
    /// Wall-time limit (JSDL `WallTimeLimit`).
    pub wall_time_limit: SimDuration,
    /// Batch queue name.
    pub queue: String,
    /// Allocation / project to charge.
    pub project: String,
    /// Total physical memory requested in MB (JSDL `TotalPhysicalMemory`).
    pub total_physical_memory_mb: u64,
    /// Whether the job spans processes via MPI (JSDL `SPMDVariation`).
    pub spmd_variation: Option<String>,
}

impl Default for JobDescription {
    fn default() -> Self {
        JobDescription {
            executable: String::new(),
            arguments: Vec::new(),
            environment: Vec::new(),
            working_directory: "/tmp".into(),
            total_cpu_count: 1,
            wall_time_limit: SimDuration::from_secs(3600),
            queue: "normal".into(),
            project: String::new(),
            total_physical_memory_mb: 0,
            spmd_variation: None,
        }
    }
}

impl JobDescription {
    /// Creates a description with the required fields set.
    pub fn new(executable: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        JobDescription {
            executable: executable.into(),
            total_cpu_count: cores,
            wall_time_limit: walltime,
            ..Default::default()
        }
    }

    /// Validates the description; returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.executable.is_empty() {
            return Err("executable must not be empty".into());
        }
        if self.total_cpu_count == 0 {
            return Err("total_cpu_count must be positive".into());
        }
        if self.wall_time_limit.is_zero() {
            return Err("wall_time_limit must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_after_setting_executable() {
        let mut jd = JobDescription::default();
        assert!(jd.validate().is_err());
        jd.executable = "pilot-agent".into();
        assert!(jd.validate().is_ok());
    }

    #[test]
    fn rejects_zero_cores_and_walltime() {
        let mut jd = JobDescription::new("x", 0, SimDuration::from_secs(10));
        assert!(jd.validate().is_err());
        jd.total_cpu_count = 4;
        jd.wall_time_limit = SimDuration::ZERO;
        assert!(jd.validate().is_err());
    }

    #[test]
    fn constructor_sets_fields() {
        let jd = JobDescription::new("agent", 128, SimDuration::from_secs(7200));
        assert_eq!(jd.total_cpu_count, 128);
        assert_eq!(jd.wall_time_limit, SimDuration::from_secs(7200));
        assert!(jd.validate().is_ok());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn job_description_serde_roundtrip() {
        let mut jd = JobDescription::new("agent", 16, SimDuration::from_secs(600));
        jd.environment.push(("OMP_NUM_THREADS".into(), "4".into()));
        jd.spmd_variation = Some("MPI".into());
        let json = serde_json::to_string(&jd).unwrap();
        let back: JobDescription = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_cpu_count, 16);
        assert_eq!(back.spmd_variation.as_deref(), Some("MPI"));
        assert_eq!(back.environment.len(), 1);
    }
}
