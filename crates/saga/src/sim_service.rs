//! The simulated-batch SAGA adapter: translates SAGA jobs to batch jobs on a
//! discrete-event [`Cluster`] and maps cluster notifications back to SAGA
//! state changes.

use crate::description::JobDescription;
use crate::job::{Job, JobState, JobUpdate, SagaJobId};
use entk_cluster::{
    BatchJobDescription, BatchJobId, BatchJobState, Cluster, ClusterEvent, ClusterNotification,
    NodeSlice, PlatformSpec,
};
use entk_sim::Context;
#[cfg(test)]
use entk_sim::SimDuration;
use std::collections::HashMap;

/// A SAGA job service backed by a simulated cluster.
///
/// Generic methods take the driver's event type `E: From<ClusterEvent>` so
/// the service can schedule cluster events on the shared engine.
pub struct SimJobService {
    cluster: Cluster,
    jobs: HashMap<SagaJobId, Job>,
    to_batch: HashMap<SagaJobId, BatchJobId>,
    from_batch: HashMap<BatchJobId, SagaJobId>,
    /// Node slices assigned to each running job, for the pilot agent.
    placements: HashMap<SagaJobId, Vec<NodeSlice>>,
    next_id: u64,
}

impl SimJobService {
    /// Creates a service for the given machine model.
    pub fn new(spec: PlatformSpec, seed: u64) -> Self {
        SimJobService {
            cluster: Cluster::new(spec, seed),
            jobs: HashMap::new(),
            to_batch: HashMap::new(),
            from_batch: HashMap::new(),
            placements: HashMap::new(),
            next_id: 0,
        }
    }

    /// Wraps an existing cluster (e.g. one with a custom batch scheduler).
    pub fn from_cluster(cluster: Cluster) -> Self {
        SimJobService {
            cluster,
            jobs: HashMap::new(),
            to_batch: HashMap::new(),
            from_batch: HashMap::new(),
            placements: HashMap::new(),
            next_id: 0,
        }
    }

    /// The underlying cluster (e.g. for transfer-time sampling).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Read access to the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Read access to a job record.
    pub fn job(&self, id: SagaJobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Node slices assigned to a running job.
    pub fn placement(&self, id: SagaJobId) -> Option<&[NodeSlice]> {
        self.placements.get(&id).map(Vec::as_slice)
    }

    /// Submits a job. Validation failures surface as `Err`; resource-level
    /// rejections surface as a `Failed` update from [`Self::handle_cluster`]
    /// or immediately in the returned updates.
    pub fn submit<E: From<ClusterEvent>>(
        &mut self,
        description: JobDescription,
        ctx: &mut Context<'_, E>,
        updates: &mut Vec<JobUpdate>,
    ) -> Result<SagaJobId, String> {
        description.validate()?;
        let id = SagaJobId(self.next_id);
        self.next_id += 1;
        let mut job = Job::new(id, description.clone(), ctx.now());

        let bd = BatchJobDescription {
            name: description.executable.clone(),
            cores: description.total_cpu_count,
            walltime: description.wall_time_limit,
            queue: description.queue.clone(),
            project: description.project.clone(),
        };
        let mut notes = Vec::new();
        match self.cluster.submit(bd, ctx, &mut notes) {
            Ok(bid) => {
                self.to_batch.insert(id, bid);
                self.from_batch.insert(bid, id);
                job.transition(JobState::Pending, ctx.now());
                updates.push(JobUpdate {
                    id,
                    state: JobState::Pending,
                    time: ctx.now(),
                    detail: None,
                    shrunk_by: None,
                });
                self.jobs.insert(id, job);
                Ok(id)
            }
            Err(reason) => {
                job.transition(JobState::Failed, ctx.now());
                updates.push(JobUpdate {
                    id,
                    state: JobState::Failed,
                    time: ctx.now(),
                    detail: Some(reason.clone()),
                    shrunk_by: None,
                });
                self.jobs.insert(id, job);
                Ok(id)
            }
        }
    }

    /// Requests cancellation of a job.
    pub fn cancel<E: From<ClusterEvent>>(
        &mut self,
        id: SagaJobId,
        ctx: &mut Context<'_, E>,
        updates: &mut Vec<JobUpdate>,
    ) {
        if let Some(&bid) = self.to_batch.get(&id) {
            let mut notes = Vec::new();
            self.cluster.cancel(bid, ctx, &mut notes);
            self.route(notes, updates);
        }
    }

    /// Marks a running job as finished by its owner (pilot releases early).
    pub fn finish<E: From<ClusterEvent>>(
        &mut self,
        id: SagaJobId,
        ctx: &mut Context<'_, E>,
        updates: &mut Vec<JobUpdate>,
    ) {
        if let Some(&bid) = self.to_batch.get(&id) {
            let mut notes = Vec::new();
            self.cluster.complete(bid, ctx, &mut notes);
            self.route(notes, updates);
        }
    }

    /// Delivers a cluster event and translates resulting notifications into
    /// SAGA job updates.
    pub fn handle_cluster<E: From<ClusterEvent>>(
        &mut self,
        event: ClusterEvent,
        ctx: &mut Context<'_, E>,
        updates: &mut Vec<JobUpdate>,
    ) {
        let mut notes = Vec::new();
        self.cluster.handle(event, ctx, &mut notes);
        self.route(notes, updates);
    }

    fn route(&mut self, notes: Vec<ClusterNotification>, updates: &mut Vec<JobUpdate>) {
        for note in notes {
            let (bid, state, time, nodes) = match note {
                ClusterNotification::JobState {
                    id,
                    state,
                    time,
                    nodes,
                } => (id, state, time, nodes),
                ClusterNotification::JobShrunk {
                    id: bid,
                    lost_cores,
                    remaining_cores,
                    time,
                } => {
                    // A crash shrank the job in place: no state transition,
                    // but the owner must shed load onto what remains.
                    let Some(&sid) = self.from_batch.get(&bid) else {
                        continue;
                    };
                    // A stale mapping (job already dropped) degrades to a
                    // skipped notification rather than a panic.
                    let Some(job) = self.jobs.get(&sid) else {
                        continue;
                    };
                    updates.push(JobUpdate {
                        id: sid,
                        state: job.state,
                        time,
                        detail: Some(format!(
                            "node crash: lost {lost_cores} cores, {remaining_cores} remain"
                        )),
                        shrunk_by: Some(lost_cores),
                    });
                    continue;
                }
            };
            let Some(&sid) = self.from_batch.get(&bid) else {
                continue;
            };
            let Some(job) = self.jobs.get_mut(&sid) else {
                continue;
            };
            let (saga_state, detail) = match state {
                BatchJobState::Queued | BatchJobState::Starting => continue, // still Pending
                BatchJobState::Running => (JobState::Running, None),
                BatchJobState::Completed => (JobState::Done, None),
                BatchJobState::TimedOut => {
                    (JobState::Failed, Some("wall time exceeded".to_string()))
                }
                BatchJobState::Cancelled => (JobState::Canceled, None),
                BatchJobState::Failed => (JobState::Failed, Some("rejected".to_string())),
            };
            if job.state == saga_state || !job.state.can_transition_to(saga_state) {
                continue;
            }
            job.transition(saga_state, time);
            if saga_state == JobState::Running {
                self.placements.insert(sid, nodes.clone());
            }
            updates.push(JobUpdate {
                id: sid,
                state: saga_state,
                time,
                detail,
                shrunk_by: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::{Engine, SimTime};

    #[derive(Debug)]
    enum Ev {
        Cluster(ClusterEvent),
        FinishPilot(SagaJobId),
    }
    impl From<ClusterEvent> for Ev {
        fn from(e: ClusterEvent) -> Ev {
            Ev::Cluster(e)
        }
    }

    fn spec() -> PlatformSpec {
        let mut s = PlatformSpec::local(2, 8);
        s.job_startup = entk_sim::Dist::Constant(2.0);
        s
    }

    #[test]
    fn job_runs_and_finishes_on_owner_request() {
        let mut svc = SimJobService::new(spec(), 3);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut log: Vec<(JobState, SimTime)> = Vec::new();
        let mut booted = false;
        engine.run(|ev, ctx| {
            let mut updates = Vec::new();
            if !booted {
                booted = true;
                let jd = JobDescription::new("pilot-agent", 8, SimDuration::from_secs(600));
                svc.submit(jd, ctx, &mut updates).unwrap();
            }
            match ev {
                Ev::Cluster(ce) => svc.handle_cluster(ce, ctx, &mut updates),
                Ev::FinishPilot(id) => svc.finish(id, ctx, &mut updates),
            }
            for u in updates {
                if u.state == JobState::Running {
                    ctx.schedule_in(SimDuration::from_secs(30), Ev::FinishPilot(u.id));
                }
                log.push((u.state, u.time));
            }
        });
        let states: Vec<_> = log.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            states,
            vec![JobState::Pending, JobState::Running, JobState::Done]
        );
        assert_eq!(log[1].1, SimTime::from_secs(2)); // startup
        assert_eq!(log[2].1, SimTime::from_secs(32));
    }

    #[test]
    fn invalid_description_is_rejected_synchronously() {
        let mut svc = SimJobService::new(spec(), 3);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        engine.run(|ev, ctx| {
            if let Ev::Cluster(ce) = ev {
                let mut updates = Vec::new();
                let jd = JobDescription::new("", 8, SimDuration::from_secs(600));
                assert!(svc.submit(jd, ctx, &mut updates).is_err());
                svc.handle_cluster(ce, ctx, &mut updates);
            }
        });
    }

    #[test]
    fn oversized_job_fails_with_detail() {
        let mut svc = SimJobService::new(spec(), 3);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut saw_failed = false;
        let mut booted = false;
        engine.run(|ev, ctx| {
            let mut updates = Vec::new();
            if !booted {
                booted = true;
                let jd = JobDescription::new("agent", 10_000, SimDuration::from_secs(600));
                svc.submit(jd, ctx, &mut updates).unwrap();
            }
            if let Ev::Cluster(ce) = ev {
                svc.handle_cluster(ce, ctx, &mut updates);
            }
            for u in &updates {
                if u.state == JobState::Failed {
                    assert!(u.detail.is_some());
                    saw_failed = true;
                }
            }
        });
        assert!(saw_failed);
    }

    #[test]
    fn walltime_expiry_maps_to_failed() {
        let mut svc = SimJobService::new(spec(), 3);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut final_state = None;
        let mut booted = false;
        engine.run(|ev, ctx| {
            let mut updates = Vec::new();
            if !booted {
                booted = true;
                // Job whose owner never finishes it: dies at walltime.
                let jd = JobDescription::new("agent", 4, SimDuration::from_secs(5));
                svc.submit(jd, ctx, &mut updates).unwrap();
            }
            if let Ev::Cluster(ce) = ev {
                svc.handle_cluster(ce, ctx, &mut updates);
            }
            for u in updates {
                if u.state.is_terminal() {
                    final_state = Some((u.state, u.detail));
                }
            }
        });
        let (state, detail) = final_state.expect("job terminated");
        assert_eq!(state, JobState::Failed);
        assert_eq!(detail.as_deref(), Some("wall time exceeded"));
    }

    #[test]
    fn placement_is_recorded_when_running() {
        let mut svc = SimJobService::new(spec(), 3);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut booted = false;
        let mut jid = None;
        engine.run(|ev, ctx| {
            let mut updates = Vec::new();
            if !booted {
                booted = true;
                let jd = JobDescription::new("agent", 12, SimDuration::from_secs(600));
                jid = Some(svc.submit(jd, ctx, &mut updates).unwrap());
            }
            match ev {
                Ev::Cluster(ce) => svc.handle_cluster(ce, ctx, &mut updates),
                Ev::FinishPilot(_) => {}
            }
            for u in updates {
                if u.state == JobState::Running {
                    let placement = svc.placement(u.id).expect("placement recorded");
                    let cores: usize = placement.iter().map(|s| s.cores).sum();
                    assert_eq!(cores, 12);
                    ctx.schedule_in(SimDuration::from_secs(1), Ev::FinishPilot(u.id));
                }
            }
        });
        assert!(svc.job(jid.unwrap()).unwrap().state.is_terminal());
    }
}
