//! Replica-exchange molecular dynamics: temperature ladders and the
//! Metropolis exchange criterion.
//!
//! This is the algorithmic content of the paper's Ensemble Exchange pattern
//! (Figs. 5–6): replicas simulate at different temperatures and periodically
//! attempt pairwise temperature swaps with their ladder neighbours.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A geometric temperature ladder.
///
/// ```
/// use entk_md::TemperatureLadder;
///
/// let ladder = TemperatureLadder::geometric(4, 1.0, 8.0);
/// assert_eq!(ladder.len(), 4);
/// assert!((ladder.temp(0) - 1.0).abs() < 1e-12);
/// assert!((ladder.temp(3) - 8.0).abs() < 1e-9);
/// // Geometric: constant ratio between rungs.
/// assert!((ladder.temp(1) / ladder.temp(0) - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureLadder {
    temps: Vec<f64>,
}

impl TemperatureLadder {
    /// Builds a geometric ladder of `n` temperatures spanning `[t_min, t_max]`.
    pub fn geometric(n: usize, t_min: f64, t_max: f64) -> Self {
        assert!(n >= 1 && t_min > 0.0 && t_max >= t_min, "invalid ladder");
        if n == 1 {
            return TemperatureLadder { temps: vec![t_min] };
        }
        let ratio = (t_max / t_min).powf(1.0 / (n - 1) as f64);
        let temps = (0..n).map(|i| t_min * ratio.powi(i as i32)).collect();
        TemperatureLadder { temps }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// True if the ladder is empty (never: constructor enforces n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Temperature of rung `i`.
    pub fn temp(&self, i: usize) -> f64 {
        self.temps[i]
    }

    /// All temperatures, ascending.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }
}

/// Metropolis acceptance probability for swapping configurations between
/// temperatures `t_i < t_j` with potential energies `e_i`, `e_j` (kB = 1):
/// `min(1, exp((1/t_i - 1/t_j) * (e_i - e_j)))`.
pub fn exchange_probability(e_i: f64, t_i: f64, e_j: f64, t_j: f64) -> f64 {
    let delta = (1.0 / t_i - 1.0 / t_j) * (e_i - e_j);
    delta.exp().min(1.0)
}

/// Bookkeeping for one exchange stage over a set of replicas.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExchangeStats {
    /// Swap attempts.
    pub attempted: u64,
    /// Accepted swaps.
    pub accepted: u64,
}

impl ExchangeStats {
    /// Acceptance ratio (0 when nothing was attempted).
    pub fn acceptance(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }
}

/// The exchange coordinator: tracks which temperature rung each replica
/// holds and performs neighbour-wise exchange sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeCoordinator {
    ladder: TemperatureLadder,
    /// `rung_of[r]` = ladder rung currently assigned to replica `r`.
    rung_of: Vec<usize>,
    stats: ExchangeStats,
    /// Alternate between even and odd neighbour pairs each sweep.
    phase: bool,
    seed_counter: u64,
    seed: u64,
}

impl ExchangeCoordinator {
    /// Creates a coordinator for `n` replicas on the given ladder
    /// (`n == ladder.len()`), replica `i` starting on rung `i`.
    pub fn new(ladder: TemperatureLadder, seed: u64) -> Self {
        let n = ladder.len();
        ExchangeCoordinator {
            ladder,
            rung_of: (0..n).collect(),
            stats: ExchangeStats::default(),
            phase: false,
            seed_counter: 0,
            seed,
        }
    }

    /// Temperature currently assigned to replica `r`.
    pub fn temperature_of(&self, r: usize) -> f64 {
        self.ladder.temp(self.rung_of[r])
    }

    /// Current rung of replica `r`.
    pub fn rung_of(&self, r: usize) -> usize {
        self.rung_of[r]
    }

    /// Cumulative exchange statistics.
    pub fn stats(&self) -> &ExchangeStats {
        &self.stats
    }

    /// Performs one neighbour-exchange sweep given each replica's current
    /// potential energy. Returns the list of swapped replica pairs.
    ///
    /// Pairing alternates between (0,1)(2,3)… and (1,2)(3,4)… sweeps — the
    /// standard even/odd scheme; exchanges are pairwise, not globally
    /// synchronized, matching the paper's EE description.
    pub fn sweep(&mut self, energies: &[f64]) -> Vec<(usize, usize)> {
        assert_eq!(
            energies.len(),
            self.rung_of.len(),
            "one energy per replica required"
        );
        let n = self.rung_of.len();
        // Replicas ordered by rung so neighbours on the ladder pair up.
        let mut by_rung: Vec<usize> = (0..n).collect();
        by_rung.sort_by_key(|&r| self.rung_of[r]);

        let mut rng = StdRng::seed_from_u64(self.seed ^ self.seed_counter.wrapping_mul(0x9E37));
        self.seed_counter += 1;

        let start = usize::from(self.phase);
        self.phase = !self.phase;
        let mut swapped = Vec::new();
        let mut k = start;
        while k + 1 < n {
            let (ra, rb) = (by_rung[k], by_rung[k + 1]);
            let (ta, tb) = (self.temperature_of(ra), self.temperature_of(rb));
            let p = exchange_probability(energies[ra], ta, energies[rb], tb);
            self.stats.attempted += 1;
            if rng.random::<f64>() < p {
                self.rung_of.swap(ra, rb);
                self.stats.accepted += 1;
                swapped.push((ra, rb));
            }
            k += 2;
        }
        swapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometric_ladder_endpoints_and_monotonicity() {
        let l = TemperatureLadder::geometric(8, 0.5, 4.0);
        assert_eq!(l.len(), 8);
        assert!((l.temp(0) - 0.5).abs() < 1e-12);
        assert!((l.temp(7) - 4.0).abs() < 1e-9);
        for w in l.temps().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn single_rung_ladder() {
        let l = TemperatureLadder::geometric(1, 1.0, 5.0);
        assert_eq!(l.len(), 1);
        assert_eq!(l.temp(0), 1.0);
    }

    #[test]
    fn exchange_probability_limits() {
        // Lower-energy config at lower temperature: swap disfavoured.
        assert!(exchange_probability(-100.0, 1.0, 0.0, 2.0) < 1e-10);
        // Higher-energy config at lower temperature: always swap.
        assert_eq!(exchange_probability(50.0, 1.0, -50.0, 2.0), 1.0);
        // Equal energies: probability exactly 1.
        assert_eq!(exchange_probability(5.0, 1.0, 5.0, 2.0), 1.0);
    }

    #[test]
    fn exchange_probability_is_detailed_balanced() {
        // p(i->j at Ti,Tj) / p(j->i with energies swapped) consistency:
        // swapping both energy labels and temperatures inverts delta.
        let p_fwd = exchange_probability(3.0, 1.0, 7.0, 2.0);
        let p_rev = exchange_probability(7.0, 1.0, 3.0, 2.0);
        assert!(p_fwd <= 1.0 && p_rev <= 1.0);
        // One of the directions must be certain.
        assert!((p_fwd - 1.0).abs() < 1e-12 || (p_rev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_swaps_rungs_not_replicas() {
        let mut coord = ExchangeCoordinator::new(TemperatureLadder::geometric(4, 1.0, 2.0), 1);
        // Make every attempt certain: give lower rungs higher energies.
        let energies = vec![100.0, 50.0, 10.0, 5.0];
        let swapped = coord.sweep(&energies);
        assert_eq!(swapped.len(), 2, "pairs (0,1) and (2,3) both certain");
        // Replica 0 moved up the ladder.
        assert_eq!(coord.rung_of(0), 1);
        assert_eq!(coord.rung_of(1), 0);
        assert_eq!(coord.stats().accepted, 2);
    }

    #[test]
    fn sweeps_alternate_pairing_phase() {
        let mut coord = ExchangeCoordinator::new(TemperatureLadder::geometric(4, 1.0, 2.0), 1);
        let energies = vec![0.0; 4];
        coord.sweep(&energies); // even phase: 2 attempts
        coord.sweep(&energies); // odd phase: 1 attempt (pairs (1,2))
        assert_eq!(coord.stats().attempted, 3);
    }

    #[test]
    fn rungs_remain_a_permutation() {
        let n = 16;
        let mut coord = ExchangeCoordinator::new(TemperatureLadder::geometric(n, 0.8, 3.0), 9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let energies: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 100.0).collect();
            coord.sweep(&energies);
            let mut rungs: Vec<usize> = (0..n).map(|r| coord.rung_of(r)).collect();
            rungs.sort_unstable();
            assert_eq!(rungs, (0..n).collect::<Vec<_>>());
        }
        assert!(coord.stats().acceptance() > 0.0);
    }

    proptest! {
        /// Exchange probability is always a valid probability.
        #[test]
        fn prop_probability_in_unit_interval(
            e_i in -1e3f64..1e3, e_j in -1e3f64..1e3,
            t_i in 0.1f64..10.0, dt in 0.01f64..10.0,
        ) {
            let p = exchange_probability(e_i, t_i, e_j, t_i + dt);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
