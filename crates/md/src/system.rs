//! Particle systems in reduced units (kB = 1, ε = σ = m = 1).
//!
//! The paper's science workloads simulate a solvated alanine dipeptide
//! (2881 atoms) with Amber/Gromacs. The stand-in here is a harmonic-chain
//! "solute" solvated in a Lennard-Jones bath: chemically naive, but it has
//! the properties the toolkit experiments exercise — a real energy function
//! for replica exchange, conformations for CoCo/LSDMap analysis, and a
//! runtime that scales with steps × atoms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 3-vector.
pub type Vec3 = [f64; 3];

/// A harmonic bond between two particles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    /// First particle index.
    pub i: usize,
    /// Second particle index.
    pub j: usize,
    /// Equilibrium length.
    pub r0: f64,
    /// Spring constant.
    pub k: f64,
}

/// A molecular system: positions, velocities, masses, bonded topology, and
/// a cubic periodic box.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MolecularSystem {
    /// Particle positions.
    pub positions: Vec<Vec3>,
    /// Particle velocities.
    pub velocities: Vec<Vec3>,
    /// Particle masses.
    pub masses: Vec<f64>,
    /// Harmonic bonds (the "solute" chain).
    pub bonds: Vec<Bond>,
    /// Number of leading particles considered solute (analysed conformers).
    pub n_solute: usize,
    /// Cubic box edge length (periodic boundary conditions).
    pub box_len: f64,
}

impl MolecularSystem {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Minimum-image displacement from particle `j` to particle `i`.
    pub fn min_image(&self, i: usize, j: usize) -> Vec3 {
        let mut d = [0.0; 3];
        for a in 0..3 {
            let mut x = self.positions[i][a] - self.positions[j][a];
            x -= self.box_len * (x / self.box_len).round();
            d[a] = x;
        }
        d
    }

    /// Total kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(v, &m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Instantaneous temperature from equipartition (kB = 1).
    pub fn temperature(&self) -> f64 {
        let dof = (3 * self.len()) as f64;
        if dof == 0.0 {
            0.0
        } else {
            2.0 * self.kinetic_energy() / dof
        }
    }

    /// Draws Maxwell–Boltzmann velocities for temperature `t` and removes
    /// centre-of-mass drift.
    pub fn thermalize(&mut self, t: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for (v, &m) in self.velocities.iter_mut().zip(&self.masses) {
            let sd = (t / m).sqrt();
            for a in 0..3 {
                // Box–Muller.
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random::<f64>();
                v[a] = sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
        // Remove net momentum.
        let total_m: f64 = self.masses.iter().sum();
        let mut p = [0.0; 3];
        for (v, &m) in self.velocities.iter().zip(&self.masses) {
            for a in 0..3 {
                p[a] += m * v[a];
            }
        }
        // All particles lose the same centre-of-mass velocity P / M.
        for v in self.velocities.iter_mut() {
            for a in 0..3 {
                v[a] -= p[a] / total_m;
            }
        }
    }

    /// The solute conformation as a flat feature vector (positions relative
    /// to the solute centroid, so the descriptor is translation-invariant).
    pub fn solute_conformation(&self) -> Vec<f64> {
        let n = self.n_solute.max(1).min(self.len());
        let mut centroid = [0.0; 3];
        for p in &self.positions[..n] {
            for a in 0..3 {
                centroid[a] += p[a] / n as f64;
            }
        }
        let mut flat = Vec::with_capacity(3 * n);
        for p in &self.positions[..n] {
            for a in 0..3 {
                flat.push(p[a] - centroid[a]);
            }
        }
        flat
    }

    /// End-to-end distance of the solute chain (a cheap collective variable).
    pub fn end_to_end(&self) -> f64 {
        if self.n_solute < 2 {
            return 0.0;
        }
        let d = self.min_image(self.n_solute - 1, 0);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }
}

/// Builds the "alanine dipeptide surrogate": a 22-particle harmonic chain
/// (alanine dipeptide has 22 atoms) solvated in an LJ bath, `total` particles
/// overall. The paper's system has 2881 atoms; tests and examples use
/// smaller baths for speed, which preserves every property the toolkit
/// experiments measure.
pub fn alanine_dipeptide_surrogate(total: usize, seed: u64) -> MolecularSystem {
    let n_solute = 22.min(total);
    let n = total.max(n_solute);
    // Size the box from a fixed lattice pitch of 1.3σ so no initial pair
    // sits on the steep LJ wall (number density ≈ 0.45).
    let spacing = 1.3;
    let cells = (n as f64).cbrt().ceil() as usize + 1;
    let box_len = spacing * cells as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::with_capacity(n);
    // Solute: a serpentine chain near the box centre. Rows of length
    // `row_len` fold back with 1.1σ row spacing, so the chain never
    // self-overlaps even in boxes shorter than the chain.
    let bond_r0 = 1.0;
    let row_len = ((box_len - 1.5) / bond_r0).floor().max(2.0) as usize;
    let row_gap = 1.1;
    for i in 0..n_solute {
        let jitter = |r: &mut StdRng| (r.random::<f64>() - 0.5) * 0.05;
        let row = i / row_len;
        let col = i % row_len;
        let x_col = if row.is_multiple_of(2) {
            col
        } else {
            row_len - 1 - col
        };
        positions.push([
            (0.75 + x_col as f64 * bond_r0 + jitter(&mut rng)).rem_euclid(box_len),
            (box_len / 2.0 + row as f64 * row_gap + jitter(&mut rng)).rem_euclid(box_len),
            (box_len / 2.0 + jitter(&mut rng)).rem_euclid(box_len),
        ]);
    }
    // Solvent: jittered cubic lattice, skipping sites near the solute —
    // deterministic and overlap-free by construction.
    'fill: for ix in 0..cells {
        for iy in 0..cells {
            for iz in 0..cells {
                if positions.len() >= n {
                    break 'fill;
                }
                let jitter = |r: &mut StdRng| (r.random::<f64>() - 0.5) * 0.1 * spacing;
                let cand = [
                    (ix as f64 + 0.5) * spacing + jitter(&mut rng),
                    (iy as f64 + 0.5) * spacing + jitter(&mut rng),
                    (iz as f64 + 0.5) * spacing + jitter(&mut rng),
                ];
                let clear = positions[..n_solute.min(positions.len())].iter().all(|p| {
                    let mut r2 = 0.0;
                    for a in 0..3 {
                        let mut x = cand[a] - p[a];
                        x -= box_len * (x / box_len).round();
                        r2 += x * x;
                    }
                    r2 > 1.0
                });
                if clear {
                    positions.push([
                        cand[0].rem_euclid(box_len),
                        cand[1].rem_euclid(box_len),
                        cand[2].rem_euclid(box_len),
                    ]);
                }
            }
        }
    }
    // Near-jamming edge case: top up with pure lattice points if skipping
    // solute sites left us short (possible only for tiny boxes).
    let mut extra = 0usize;
    while positions.len() < n {
        let i = positions.len() + extra;
        let (ix, iy, iz) = (i % cells, (i / cells) % cells, i / (cells * cells));
        // BCC-like second sub-lattice: ≥ spacing·√3/2 from primary sites.
        positions.push([
            (ix as f64 * spacing).rem_euclid(box_len),
            (iy as f64 * spacing).rem_euclid(box_len),
            (iz as f64 * spacing).rem_euclid(box_len),
        ]);
        extra += 1;
    }
    let bonds = (0..n_solute.saturating_sub(1))
        .map(|i| Bond {
            i,
            j: i + 1,
            r0: bond_r0,
            k: 100.0,
        })
        .collect();
    MolecularSystem {
        velocities: vec![[0.0; 3]; n],
        masses: vec![1.0; n],
        positions,
        bonds,
        n_solute,
        box_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_has_requested_size_and_chain() {
        let sys = alanine_dipeptide_surrogate(100, 1);
        assert_eq!(sys.len(), 100);
        assert_eq!(sys.n_solute, 22);
        assert_eq!(sys.bonds.len(), 21);
        assert!(sys.box_len > 0.0);
    }

    #[test]
    fn paper_scale_system_builds() {
        let sys = alanine_dipeptide_surrogate(2881, 7);
        assert_eq!(sys.len(), 2881);
        assert_eq!(sys.n_solute, 22);
    }

    #[test]
    fn thermalize_hits_target_temperature() {
        let mut sys = alanine_dipeptide_surrogate(500, 2);
        sys.thermalize(1.5, 99);
        let t = sys.temperature();
        assert!((t - 1.5).abs() < 0.15, "temperature {t}");
    }

    #[test]
    fn thermalize_removes_momentum() {
        let mut sys = alanine_dipeptide_surrogate(200, 3);
        sys.thermalize(2.0, 5);
        let mut p = [0.0; 3];
        for (v, &m) in sys.velocities.iter().zip(&sys.masses) {
            for a in 0..3 {
                p[a] += m * v[a];
            }
        }
        for a in 0..3 {
            assert!(p[a].abs() < 1e-9, "net momentum {p:?}");
        }
    }

    #[test]
    fn min_image_wraps_across_box() {
        let mut sys = alanine_dipeptide_surrogate(30, 4);
        let l = sys.box_len;
        sys.positions[0] = [0.1, 0.0, 0.0];
        sys.positions[1] = [l - 0.1, 0.0, 0.0];
        let d = sys.min_image(0, 1);
        assert!((d[0] - 0.2).abs() < 1e-12, "wrapped distance {d:?}");
    }

    #[test]
    fn conformation_is_translation_invariant() {
        let sys = alanine_dipeptide_surrogate(50, 5);
        let c1 = sys.solute_conformation();
        let mut moved = sys.clone();
        for p in &mut moved.positions {
            p[0] += 1.234;
        }
        let c2 = moved.solute_conformation();
        for (a, b) in c1.iter().zip(&c2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn no_initial_overlaps() {
        let sys = alanine_dipeptide_surrogate(300, 6);
        for i in 22..sys.len() {
            for j in 0..i {
                let d = sys.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                assert!(r2 > 0.5, "overlap between {i} and {j}: r2={r2}");
            }
        }
    }
}
