//! An MD "engine" facade imitating how EnTK kernels invoke Amber or Gromacs:
//! configure once, run a segment of dynamics, get a trajectory and energies.

use crate::forcefield::ForceField;
use crate::integrator::{Ensemble, Integrator};
use crate::system::MolecularSystem;
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// Which external engine this run stands in for (cosmetic: both use the
/// same toy physics, as the paper's kernel abstraction intends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineFlavor {
    /// Amber stand-in (used by the EE and SAL scaling workloads).
    Amber,
    /// Gromacs stand-in (used by the Gromacs–LSDMap validation workload).
    Gromacs,
}

/// Configuration of an MD segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MdConfig {
    /// Integration time step.
    pub dt: f64,
    /// Thermostat temperature.
    pub temperature: f64,
    /// Langevin friction.
    pub gamma: f64,
    /// Record a trajectory frame every this many steps (0 = final only).
    pub record_every: usize,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            dt: 2e-3,
            temperature: 1.0,
            gamma: 2.0,
            record_every: 50,
        }
    }
}

/// Result of one MD segment.
#[derive(Debug, Clone)]
pub struct MdResult {
    /// Recorded solute conformations.
    pub trajectory: Trajectory,
    /// Potential energy after the final step.
    pub final_potential: f64,
    /// Mean instantaneous temperature over recorded frames.
    pub mean_temperature: f64,
    /// Steps actually integrated.
    pub steps: usize,
}

/// The engine facade.
#[derive(Debug, Clone)]
pub struct MdEngine {
    /// Flavor tag carried into reports.
    pub flavor: EngineFlavor,
    /// Segment configuration.
    pub config: MdConfig,
    /// Force field.
    pub forcefield: ForceField,
}

impl MdEngine {
    /// An engine with default config for the given flavor.
    pub fn new(flavor: EngineFlavor) -> Self {
        MdEngine {
            flavor,
            config: MdConfig::default(),
            forcefield: ForceField::default(),
        }
    }

    /// Runs `steps` of Langevin dynamics on `sys`, recording frames.
    pub fn run(&self, sys: &mut MolecularSystem, steps: usize, seed: u64) -> MdResult {
        let mut integrator = Integrator::new(
            self.forcefield,
            Ensemble::Langevin {
                t: self.config.temperature,
                gamma: self.config.gamma,
            },
            self.config.dt,
            seed,
        );
        let mut trajectory = Trajectory::new(3 * sys.n_solute.max(1).min(sys.len()));
        let mut temp_acc = 0.0;
        let mut temp_n = 0u32;
        let every = self.config.record_every;
        let mut done = 0;
        while done < steps {
            let chunk = if every == 0 {
                steps - done
            } else {
                every.min(steps - done)
            };
            integrator.run(sys, chunk);
            done += chunk;
            trajectory.record(sys);
            temp_acc += sys.temperature();
            temp_n += 1;
        }
        MdResult {
            trajectory,
            final_potential: integrator.potential(),
            mean_temperature: if temp_n == 0 {
                0.0
            } else {
                temp_acc / f64::from(temp_n)
            },
            steps: done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::alanine_dipeptide_surrogate;

    #[test]
    fn run_produces_frames_and_energy() {
        let engine = MdEngine::new(EngineFlavor::Amber);
        let mut sys = alanine_dipeptide_surrogate(60, 1);
        sys.thermalize(1.0, 2);
        let result = engine.run(&mut sys, 200, 3);
        assert_eq!(result.steps, 200);
        assert_eq!(result.trajectory.len(), 4); // every 50 steps
        assert!(result.mean_temperature > 0.0);
        assert!(result.final_potential.is_finite());
    }

    #[test]
    fn record_every_zero_records_final_frame_only() {
        let mut engine = MdEngine::new(EngineFlavor::Gromacs);
        engine.config.record_every = 0;
        let mut sys = alanine_dipeptide_surrogate(40, 1);
        let result = engine.run(&mut sys, 100, 3);
        assert_eq!(result.trajectory.len(), 1);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let engine = MdEngine::new(EngineFlavor::Amber);
        let run = || {
            let mut sys = alanine_dipeptide_surrogate(50, 9);
            sys.thermalize(1.0, 4);
            engine.run(&mut sys, 100, 5).final_potential
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let engine = MdEngine::new(EngineFlavor::Amber);
        let mut sys = alanine_dipeptide_surrogate(30, 1);
        let result = engine.run(&mut sys, 0, 1);
        assert_eq!(result.steps, 0);
        assert!(result.trajectory.is_empty());
    }
}
