//! Time integration: velocity Verlet (NVE) and Langevin (NVT).

use crate::forcefield::{ForceField, ForceScratch};
use crate::system::{MolecularSystem, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thermostat coupling applied on top of velocity Verlet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ensemble {
    /// Microcanonical: pure velocity Verlet (energy-conserving).
    Nve,
    /// Canonical via Langevin dynamics at temperature `t` with friction
    /// `gamma` (BAOAB-style O-step between half-kicks).
    Langevin {
        /// Target temperature.
        t: f64,
        /// Friction coefficient.
        gamma: f64,
    },
}

/// A reusable integrator holding force scratch space and the RNG stream.
pub struct Integrator {
    ff: ForceField,
    ensemble: Ensemble,
    dt: f64,
    forces: Vec<Vec3>,
    scratch: ForceScratch,
    rng: StdRng,
    /// Potential energy at the most recent step.
    last_potential: f64,
    initialized: bool,
}

impl Integrator {
    /// Creates an integrator; `seed` drives the Langevin noise.
    pub fn new(ff: ForceField, ensemble: Ensemble, dt: f64, seed: u64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        Integrator {
            ff,
            ensemble,
            dt,
            forces: Vec::new(),
            scratch: ForceScratch::default(),
            rng: StdRng::seed_from_u64(seed),
            last_potential: 0.0,
            initialized: false,
        }
    }

    /// Potential energy recorded at the last completed step.
    pub fn potential(&self) -> f64 {
        self.last_potential
    }

    /// Total energy (kinetic + potential) at the last completed step.
    pub fn total_energy(&self, sys: &MolecularSystem) -> f64 {
        sys.kinetic_energy() + self.last_potential
    }

    /// Advances the system by `steps` time steps.
    pub fn run(&mut self, sys: &mut MolecularSystem, steps: usize) {
        if !self.initialized {
            self.last_potential =
                self.ff
                    .compute_with_scratch(sys, &mut self.forces, &mut self.scratch);
            self.initialized = true;
        }
        for _ in 0..steps {
            self.step(sys);
        }
    }

    fn step(&mut self, sys: &mut MolecularSystem) {
        let dt = self.dt;
        let n = sys.len();
        // B: half kick.
        for i in 0..n {
            let inv_m = 1.0 / sys.masses[i];
            for a in 0..3 {
                sys.velocities[i][a] += 0.5 * dt * self.forces[i][a] * inv_m;
            }
        }
        // A: half drift.
        for i in 0..n {
            for a in 0..3 {
                sys.positions[i][a] += 0.5 * dt * sys.velocities[i][a];
            }
        }
        // O: Ornstein–Uhlenbeck velocity refresh (Langevin only).
        if let Ensemble::Langevin { t, gamma } = self.ensemble {
            let c1 = (-gamma * dt).exp();
            let c2 = (1.0 - c1 * c1).sqrt();
            for i in 0..n {
                let sd = (t / sys.masses[i]).sqrt();
                for a in 0..3 {
                    let u1: f64 = 1.0 - self.rng.random::<f64>();
                    let u2: f64 = self.rng.random::<f64>();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    sys.velocities[i][a] = c1 * sys.velocities[i][a] + c2 * sd * z;
                }
            }
        }
        // A: half drift.
        for i in 0..n {
            for a in 0..3 {
                sys.positions[i][a] += 0.5 * dt * sys.velocities[i][a];
                // Wrap into the periodic box.
                sys.positions[i][a] = sys.positions[i][a].rem_euclid(sys.box_len);
            }
        }
        // Recompute forces, then B: half kick.
        self.last_potential =
            self.ff
                .compute_with_scratch(sys, &mut self.forces, &mut self.scratch);
        for i in 0..n {
            let inv_m = 1.0 / sys.masses[i];
            for a in 0..3 {
                sys.velocities[i][a] += 0.5 * dt * self.forces[i][a] * inv_m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{alanine_dipeptide_surrogate, Bond};

    /// A single bonded dimer: an analytically tractable oscillator.
    fn oscillator() -> MolecularSystem {
        MolecularSystem {
            positions: vec![[0.0; 3], [1.3, 0.0, 0.0]],
            velocities: vec![[0.0; 3]; 2],
            masses: vec![1.0; 2],
            bonds: vec![Bond {
                i: 0,
                j: 1,
                r0: 1.0,
                k: 50.0,
            }],
            n_solute: 2,
            box_len: 1000.0,
        }
    }

    #[test]
    fn nve_conserves_energy() {
        let ff = ForceField {
            epsilon: 0.0,
            ..Default::default()
        };
        let mut sys = oscillator();
        let mut integ = Integrator::new(ff, Ensemble::Nve, 1e-3, 1);
        integ.run(&mut sys, 1);
        let e0 = integ.total_energy(&sys);
        integ.run(&mut sys, 5000);
        let e1 = integ.total_energy(&sys);
        assert!(
            (e1 - e0).abs() < 1e-4 * e0.abs().max(1.0),
            "energy drifted {e0} -> {e1}"
        );
    }

    #[test]
    fn nve_oscillator_period_is_correct() {
        // Reduced-mass oscillator: omega = sqrt(k/mu), mu = 0.5.
        let ff = ForceField {
            epsilon: 0.0,
            ..Default::default()
        };
        let mut sys = oscillator();
        let dt = 1e-4;
        let mut integ = Integrator::new(ff, Ensemble::Nve, dt, 1);
        let period = std::f64::consts::TAU / (50.0f64 / 0.5).sqrt();
        let steps = (period / dt).round() as usize;
        let x0 = sys.positions[1][0] - sys.positions[0][0];
        integ.run(&mut sys, steps);
        let x1 = sys.positions[1][0] - sys.positions[0][0];
        assert!((x1 - x0).abs() < 1e-3, "after one period: {x0} vs {x1}");
    }

    #[test]
    fn langevin_reaches_target_temperature() {
        let mut sys = alanine_dipeptide_surrogate(120, 11);
        sys.thermalize(0.5, 3);
        let mut integ = Integrator::new(
            ForceField::default(),
            Ensemble::Langevin { t: 1.2, gamma: 2.0 },
            2e-3,
            42,
        );
        integ.run(&mut sys, 500); // equilibrate
                                  // Average over a window.
        let mut acc = 0.0;
        let windows = 40;
        for _ in 0..windows {
            integ.run(&mut sys, 25);
            acc += sys.temperature();
        }
        let t = acc / windows as f64;
        assert!((t - 1.2).abs() < 0.15, "temperature {t}");
    }

    #[test]
    fn hotter_replica_has_higher_mean_potential() {
        // The property replica exchange relies on.
        let run_at = |t: f64| {
            let mut sys = alanine_dipeptide_surrogate(80, 21);
            sys.thermalize(t, 5);
            let mut integ = Integrator::new(
                ForceField::default(),
                Ensemble::Langevin { t, gamma: 2.0 },
                2e-3,
                7,
            );
            integ.run(&mut sys, 400);
            let mut acc = 0.0;
            for _ in 0..20 {
                integ.run(&mut sys, 20);
                acc += integ.potential();
            }
            acc / 20.0
        };
        let cold = run_at(0.4);
        let hot = run_at(2.0);
        assert!(hot > cold, "potential: cold {cold}, hot {hot}");
    }

    #[test]
    fn positions_stay_in_box() {
        let mut sys = alanine_dipeptide_surrogate(60, 9);
        sys.thermalize(2.0, 1);
        let mut integ = Integrator::new(
            ForceField::default(),
            Ensemble::Langevin { t: 2.0, gamma: 1.0 },
            2e-3,
            3,
        );
        integ.run(&mut sys, 300);
        for p in &sys.positions {
            for a in 0..3 {
                assert!(p[a] >= 0.0 && p[a] < sys.box_len, "escaped: {p:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_is_rejected() {
        Integrator::new(ForceField::default(), Ensemble::Nve, 0.0, 1);
    }
}
