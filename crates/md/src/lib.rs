//! # entk-md — toy molecular-dynamics substrate (Amber/Gromacs stand-in)
//!
//! The paper's science workloads run Amber and Gromacs on a solvated alanine
//! dipeptide (2881 atoms). This crate provides the closest synthetic
//! equivalent: a harmonic-chain solute in a Lennard-Jones bath, velocity
//! Verlet + Langevin dynamics, replica-exchange (temperature) machinery, and
//! trajectory I/O. It gives EnTK kernels real energies, real conformations,
//! and runtimes that scale with steps × atoms — everything the toolkit
//! experiments actually exercise.

#![warn(missing_docs)]
// Fixed 3-axis index loops read naturally as `for a in 0..3`.
#![allow(clippy::needless_range_loop)]

pub mod celllist;
pub mod engine;
pub mod forcefield;
pub mod integrator;
pub mod observables;
pub mod remd;
pub mod system;
pub mod trajectory;

pub use celllist::CellList;
pub use engine::{EngineFlavor, MdConfig, MdEngine, MdResult};
pub use forcefield::ForceField;
pub use integrator::{Ensemble, Integrator};
pub use observables::{msd, rdf, velocity_autocorrelation, Rdf};
pub use remd::{exchange_probability, ExchangeCoordinator, ExchangeStats, TemperatureLadder};
pub use system::{alanine_dipeptide_surrogate, Bond, MolecularSystem, Vec3};
pub use trajectory::Trajectory;
