//! Structural and dynamical observables over MD output: radial
//! distribution functions, mean-squared displacement, and velocity
//! autocorrelation. These are the quantities the paper's science users
//! compute from ensemble trajectories.

use crate::system::MolecularSystem;
use serde::{Deserialize, Serialize};

/// A radial distribution function g(r).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rdf {
    /// Bin centres (r values).
    pub r: Vec<f64>,
    /// g(r) per bin.
    pub g: Vec<f64>,
}

/// Computes g(r) of the current configuration up to `r_max` with `bins`
/// bins, normalized against the ideal-gas shell density.
pub fn rdf(sys: &MolecularSystem, r_max: f64, bins: usize) -> Rdf {
    assert!(r_max > 0.0 && bins > 0, "invalid RDF parameters");
    assert!(
        r_max <= sys.box_len / 2.0 + 1e-9,
        "r_max beyond the minimum-image radius"
    );
    let n = sys.len();
    let width = r_max / bins as f64;
    let mut counts = vec![0u64; bins];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sys.min_image(i, j);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r < r_max {
                counts[(r / width) as usize] += 1;
            }
        }
    }
    let volume = sys.box_len.powi(3);
    let density = n as f64 / volume;
    let mut r_centres = Vec::with_capacity(bins);
    let mut g = Vec::with_capacity(bins);
    for (k, &c) in counts.iter().enumerate() {
        let r_lo = k as f64 * width;
        let r_hi = r_lo + width;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        // Each of the n(n-1)/2 pairs was counted once.
        let ideal = 0.5 * n as f64 * density * shell;
        r_centres.push(r_lo + width / 2.0);
        g.push(if ideal > 0.0 { c as f64 / ideal } else { 0.0 });
    }
    Rdf { r: r_centres, g }
}

/// Mean-squared displacement between two *unwrapped* position snapshots
/// (callers must track unwrapped coordinates; periodic wrapping would
/// artificially bound the MSD).
pub fn msd(reference: &[[f64; 3]], current: &[[f64; 3]]) -> f64 {
    assert_eq!(reference.len(), current.len(), "snapshot size mismatch");
    assert!(!reference.is_empty(), "empty snapshots");
    reference
        .iter()
        .zip(current)
        .map(|(a, b)| (0..3).map(|k| (b[k] - a[k]) * (b[k] - a[k])).sum::<f64>())
        .sum::<f64>()
        / reference.len() as f64
}

/// Normalized velocity autocorrelation between two velocity snapshots:
/// `⟨v(0)·v(t)⟩ / ⟨v(0)·v(0)⟩`.
pub fn velocity_autocorrelation(v0: &[[f64; 3]], vt: &[[f64; 3]]) -> f64 {
    assert_eq!(v0.len(), vt.len(), "snapshot size mismatch");
    assert!(!v0.is_empty(), "empty snapshots");
    let dot: f64 = v0
        .iter()
        .zip(vt)
        .map(|(a, b)| a[0] * b[0] + a[1] * b[1] + a[2] * b[2])
        .sum();
    let norm: f64 = v0
        .iter()
        .map(|a| a[0] * a[0] + a[1] * a[1] + a[2] * a[2])
        .sum();
    if norm == 0.0 {
        0.0
    } else {
        dot / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::integrator::{Ensemble, Integrator};
    use crate::system::alanine_dipeptide_surrogate;

    #[test]
    fn rdf_has_excluded_core_and_contact_peak() {
        // Equilibrate a small LJ fluid, then measure g(r).
        let mut sys = alanine_dipeptide_surrogate(250, 1);
        sys.thermalize(1.0, 2);
        let mut integ = Integrator::new(
            ForceField::default(),
            Ensemble::Langevin { t: 1.0, gamma: 2.0 },
            2e-3,
            3,
        );
        integ.run(&mut sys, 400);
        let result = rdf(&sys, sys.box_len / 2.0, 50);
        // Hard core: g ≈ 0 below ~0.8σ.
        let core: f64 = result
            .r
            .iter()
            .zip(&result.g)
            .filter(|(&r, _)| r < 0.8)
            .map(|(_, &g)| g)
            .sum();
        assert!(core < 0.1, "core not excluded: {core}");
        // First peak near the LJ minimum exceeds the long-range plateau.
        let peak = result
            .r
            .iter()
            .zip(&result.g)
            .filter(|(&r, _)| (1.0..1.5).contains(&r))
            .map(|(_, &g)| g)
            .fold(0.0f64, f64::max);
        assert!(peak > 1.2, "no contact peak: {peak}");
        // Long-range: g → 1.
        let tail: Vec<f64> = result
            .r
            .iter()
            .zip(&result.g)
            .filter(|(&r, _)| r > 0.8 * sys.box_len / 2.0)
            .map(|(_, &g)| g)
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((tail_mean - 1.0).abs() < 0.3, "tail {tail_mean}");
    }

    #[test]
    fn msd_zero_for_identical_snapshots() {
        let snap = vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        assert_eq!(msd(&snap, &snap), 0.0);
    }

    #[test]
    fn msd_matches_uniform_translation() {
        let a = vec![[0.0; 3]; 10];
        let b = vec![[3.0, 4.0, 0.0]; 10]; // displacement 5
        assert!((msd(&a, &b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn vacf_is_one_at_zero_lag_and_decays() {
        let mut sys = alanine_dipeptide_surrogate(150, 5);
        sys.thermalize(1.0, 6);
        let v0 = sys.velocities.clone();
        assert!((velocity_autocorrelation(&v0, &v0) - 1.0).abs() < 1e-12);
        let mut integ = Integrator::new(
            ForceField::default(),
            Ensemble::Langevin { t: 1.0, gamma: 5.0 },
            2e-3,
            7,
        );
        integ.run(&mut sys, 500);
        let late = velocity_autocorrelation(&v0, &sys.velocities);
        assert!(late.abs() < 0.3, "correlation should decay: {late}");
    }

    #[test]
    #[should_panic(expected = "minimum-image radius")]
    fn rdf_rejects_oversized_rmax() {
        let sys = alanine_dipeptide_surrogate(50, 1);
        rdf(&sys, sys.box_len, 10);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn msd_rejects_mismatched_snapshots() {
        msd(&[[0.0; 3]], &[[0.0; 3], [1.0; 3]]);
    }
}
