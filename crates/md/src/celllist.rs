//! Cell lists: O(N) neighbour finding for the Lennard-Jones pair loop.
//!
//! The naive pair loop in [`crate::forcefield`] is O(N²); for the paper's
//! 2881-atom system executed locally that cost dominates. A cell list bins
//! particles into cubic cells no smaller than the cutoff, so interaction
//! candidates come only from the 27 neighbouring cells. Falls back to the
//! naive loop when the box is too small for at least 3 cells per side
//! (otherwise neighbour cells alias under periodic wrap).

use crate::system::MolecularSystem;

/// A cell decomposition of the simulation box.
pub struct CellList {
    /// Cells per side.
    cells_per_side: usize,
    /// Particle indices per cell, flattened `ix·m² + iy·m + iz`.
    bins: Vec<Vec<usize>>,
    cell_len: f64,
}

impl CellList {
    /// Builds a cell list for `sys` with cells at least `min_cell` long
    /// (use the force-field cutoff). Returns `None` when fewer than 3
    /// cells fit per side — callers should fall back to the naive loop.
    pub fn build(sys: &MolecularSystem, min_cell: f64) -> Option<CellList> {
        let mut slot = None;
        Self::rebuild(&mut slot, sys, min_cell);
        slot
    }

    /// Like [`CellList::build`], but reuses `slot`'s bin allocations when the
    /// grid dimensions are unchanged (the common case: same system, every
    /// step). After the call `slot` is `Some` exactly when the box fits at
    /// least 3 cells per side.
    pub fn rebuild(slot: &mut Option<CellList>, sys: &MolecularSystem, min_cell: f64) {
        assert!(min_cell > 0.0, "cell size must be positive");
        let m = (sys.box_len / min_cell).floor() as usize;
        if m < 3 {
            *slot = None;
            return;
        }
        let cell_len = sys.box_len / m as f64;
        let cl = match slot {
            Some(cl) if cl.cells_per_side == m => {
                for bin in &mut cl.bins {
                    bin.clear();
                }
                cl.cell_len = cell_len;
                cl
            }
            _ => slot.insert(CellList {
                cells_per_side: m,
                bins: vec![Vec::new(); m * m * m],
                cell_len,
            }),
        };
        for (i, p) in sys.positions.iter().enumerate() {
            let idx = Self::cell_index(p, cell_len, m);
            cl.bins[idx].push(i);
        }
    }

    fn cell_index(p: &[f64; 3], cell_len: f64, m: usize) -> usize {
        let mut idx = 0;
        for a in 0..3 {
            let mut k = (p[a] / cell_len) as usize;
            if k >= m {
                k = m - 1; // guard against p == box_len edge
            }
            idx = idx * m + k;
        }
        idx
    }

    /// Cells per side.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Edge length of one cell.
    pub fn cell_len(&self) -> f64 {
        self.cell_len
    }

    /// Calls `f(i, j)` for every candidate pair `(i < j)` within the same
    /// or neighbouring (periodic) cells. Pairs farther than one cell apart
    /// are never visited; pairs within the cutoff always are (cell length
    /// ≥ cutoff by construction).
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        for x in 0..self.cells_per_side {
            self.for_each_pair_in_x_layer(x, &mut f);
        }
    }

    /// The pairs of [`CellList::for_each_pair`] whose *home* cell sits in
    /// x-layer `x`, in the same relative order. Every `HALF_NEIGHBOURS`
    /// offset has `dx ∈ {0, 1}`, so layer `x` only reads particles binned
    /// in layers `x` and `x + 1` (mod `m`): distinct layers emit disjoint
    /// pair sets and may run concurrently against read-only state.
    pub fn for_each_pair_in_x_layer(&self, x: usize, mut f: impl FnMut(usize, usize)) {
        let m = self.cells_per_side as isize;
        let cell_of = |x: isize, y: isize, z: isize| -> usize {
            let w = |v: isize| v.rem_euclid(m) as usize;
            (w(x) * self.cells_per_side + w(y)) * self.cells_per_side + w(z)
        };
        let x = x as isize;
        for y in 0..m {
            for z in 0..m {
                let home = cell_of(x, y, z);
                let home_bin = &self.bins[home];
                // Within the home cell.
                for (a, &i) in home_bin.iter().enumerate() {
                    for &j in &home_bin[a + 1..] {
                        f(i.min(j), i.max(j));
                    }
                }
                // Against half the neighbour cells (13 of 26) so each
                // cell pair is visited once.
                for &(dx, dy, dz) in HALF_NEIGHBOURS {
                    let other = cell_of(x + dx, y + dy, z + dz);
                    if other == home {
                        continue; // aliasing cannot happen for m >= 3
                    }
                    for &i in home_bin {
                        for &j in &self.bins[other] {
                            f(i.min(j), i.max(j));
                        }
                    }
                }
            }
        }
    }
}

/// Half of the 26 neighbour offsets: each unordered cell pair appears once.
const HALF_NEIGHBOURS: &[(isize, isize, isize)] = &[
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::alanine_dipeptide_surrogate;
    use std::collections::HashSet;

    #[test]
    fn all_close_pairs_are_candidates() {
        let sys = alanine_dipeptide_surrogate(200, 3);
        let cutoff = 2.5;
        let cl = CellList::build(&sys, cutoff).expect("box large enough");
        let mut candidates = HashSet::new();
        cl.for_each_pair(|i, j| {
            candidates.insert((i, j));
        });
        for i in 0..sys.len() {
            for j in (i + 1)..sys.len() {
                let d = sys.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < cutoff * cutoff {
                    assert!(
                        candidates.contains(&(i, j)),
                        "pair ({i},{j}) at r={} missed",
                        r2.sqrt()
                    );
                }
            }
        }
    }

    #[test]
    fn no_pair_visited_twice() {
        let sys = alanine_dipeptide_surrogate(150, 4);
        let cl = CellList::build(&sys, 2.5).expect("box large enough");
        let mut seen = HashSet::new();
        cl.for_each_pair(|i, j| {
            assert!(i < j, "pairs must be ordered");
            assert!(seen.insert((i, j)), "pair ({i},{j}) visited twice");
        });
    }

    #[test]
    fn candidate_count_is_subquadratic() {
        let sys = alanine_dipeptide_surrogate(1000, 5);
        let cl = CellList::build(&sys, 2.5).expect("box large enough");
        let mut count = 0usize;
        cl.for_each_pair(|_, _| count += 1);
        let all_pairs = 1000 * 999 / 2;
        assert!(
            count < all_pairs / 2,
            "cell list should prune most pairs: {count} of {all_pairs}"
        );
    }

    #[test]
    fn tiny_box_returns_none() {
        let sys = alanine_dipeptide_surrogate(8, 1);
        // Cutoff comparable to the box: fewer than 3 cells per side.
        assert!(CellList::build(&sys, sys.box_len / 2.0).is_none());
    }

    #[test]
    fn layered_iteration_composes_to_full_iteration() {
        let sys = alanine_dipeptide_surrogate(250, 8);
        let cl = CellList::build(&sys, 2.5).expect("box large enough");
        let mut whole = Vec::new();
        cl.for_each_pair(|i, j| whole.push((i, j)));
        let mut layered = Vec::new();
        let mut per_layer_sets: Vec<HashSet<(usize, usize)>> = Vec::new();
        for x in 0..cl.cells_per_side() {
            let mut set = HashSet::new();
            cl.for_each_pair_in_x_layer(x, |i, j| {
                layered.push((i, j));
                set.insert((i, j));
            });
            per_layer_sets.push(set);
        }
        assert_eq!(whole, layered, "layer concatenation must match full order");
        for (a, sa) in per_layer_sets.iter().enumerate() {
            for (b, sb) in per_layer_sets.iter().enumerate().skip(a + 1) {
                assert!(
                    sa.is_disjoint(sb),
                    "layers {a} and {b} emit overlapping pairs"
                );
            }
        }
    }

    #[test]
    fn rebuild_reuses_allocation_and_matches_fresh_build() {
        let sys_a = alanine_dipeptide_surrogate(300, 6);
        let mut slot = None;
        CellList::rebuild(&mut slot, &sys_a, 2.5);
        assert!(slot.is_some());
        // Rebuild over a different configuration with the same grid.
        let sys_b = alanine_dipeptide_surrogate(300, 7);
        CellList::rebuild(&mut slot, &sys_b, 2.5);
        let pooled = slot.take().expect("box large enough");
        let fresh = CellList::build(&sys_b, 2.5).expect("box large enough");
        let mut p = Vec::new();
        pooled.for_each_pair(|i, j| p.push((i, j)));
        let mut f = Vec::new();
        fresh.for_each_pair(|i, j| f.push((i, j)));
        assert_eq!(p, f, "pooled rebuild must bin identically to a fresh build");
    }

    #[test]
    fn rebuild_clears_slot_when_box_is_too_small() {
        let big = alanine_dipeptide_surrogate(300, 6);
        let mut slot = None;
        CellList::rebuild(&mut slot, &big, 2.5);
        assert!(slot.is_some());
        let tiny = alanine_dipeptide_surrogate(8, 1);
        CellList::rebuild(&mut slot, &tiny, tiny.box_len / 2.0);
        assert!(slot.is_none(), "unusable grid must clear the slot");
    }

    #[test]
    fn every_particle_lands_in_exactly_one_cell() {
        let sys = alanine_dipeptide_surrogate(300, 6);
        let cl = CellList::build(&sys, 2.5).expect("box large enough");
        let total: usize = cl.bins.iter().map(Vec::len).sum();
        assert_eq!(total, sys.len());
    }
}
