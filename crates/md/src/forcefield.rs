//! Force field: truncated-shifted Lennard-Jones + harmonic bonds.
//!
//! The cell-list LJ evaluation is organised as per-x-layer partial sums so
//! it can run on multiple threads while staying bit-for-bit deterministic:
//! partials are keyed by *layer*, not by worker thread, and are reduced in
//! layer order, so the floating-point summation order never depends on the
//! thread count (see [`ForceField::compute_with_scratch`]).

use crate::celllist::CellList;
use crate::system::{MolecularSystem, Vec3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Force-field parameters (reduced units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceField {
    /// LJ well depth.
    pub epsilon: f64,
    /// LJ diameter.
    pub sigma: f64,
    /// LJ cutoff radius.
    pub cutoff: f64,
}

impl Default for ForceField {
    fn default() -> Self {
        ForceField {
            epsilon: 1.0,
            sigma: 1.0,
            cutoff: 2.5,
        }
    }
}

/// Particle count above which the cell-list path is attempted.
const CELL_LIST_THRESHOLD: usize = 128;

/// Reusable allocations for [`ForceField::compute_with_scratch`]: the cell
/// list (whose bins keep their capacity across rebuilds) and the pool of
/// per-layer partial force buffers. One scratch per integrator; forces
/// computed through a scratch are identical to forces computed without one.
#[derive(Default)]
pub struct ForceScratch {
    cell: Option<CellList>,
    layer_buffers: Vec<Vec<Vec3>>,
}

impl ForceField {
    /// Computes forces into `forces` (overwritten) and returns the potential
    /// energy. Uses an O(N) cell list when the system is large enough and
    /// the box fits at least 3 cells per side; falls back to the O(N²)
    /// minimum-image pair loop otherwise. Both paths produce identical
    /// results (covered by a property test).
    ///
    /// Convenience wrapper over [`ForceField::compute_with_scratch`] with a
    /// throwaway scratch; per-step callers should hold a [`ForceScratch`]
    /// to reuse the cell-list bins and layer buffers.
    pub fn compute(&self, sys: &MolecularSystem, forces: &mut Vec<Vec3>) -> f64 {
        self.compute_with_scratch(sys, forces, &mut ForceScratch::default())
    }

    /// [`ForceField::compute`] with caller-owned scratch allocations.
    ///
    /// On the cell-list path the LJ sum is split into per-x-layer partials
    /// executed through `rayon` (thread count: `ENTK_THREADS`, then
    /// `RAYON_NUM_THREADS`, then the core count) and reduced in layer
    /// order. Distinct layers emit disjoint pair sets and each partial is
    /// keyed by layer rather than by worker thread, so the result is
    /// bit-identical at any thread count.
    pub fn compute_with_scratch(
        &self,
        sys: &MolecularSystem,
        forces: &mut Vec<Vec3>,
        scratch: &mut ForceScratch,
    ) -> f64 {
        let n = sys.len();
        forces.clear();
        forces.resize(n, [0.0; 3]);
        let mut potential = 0.0;
        let rc2 = self.cutoff * self.cutoff;
        // Energy shift so the potential is continuous at the cutoff.
        let sr6c = (self.sigma * self.sigma / rc2).powi(3);
        let shift = 4.0 * self.epsilon * (sr6c * sr6c - sr6c);

        if n >= CELL_LIST_THRESHOLD && self.epsilon != 0.0 {
            CellList::rebuild(&mut scratch.cell, sys, self.cutoff);
        } else {
            scratch.cell = None;
        }
        match &scratch.cell {
            Some(cl) => {
                potential +=
                    self.lj_layered(sys, cl, rc2, shift, forces, &mut scratch.layer_buffers);
            }
            None => {
                if self.epsilon != 0.0 {
                    for i in 0..n {
                        for j in (i + 1)..n {
                            self.lj_pair(sys, i, j, (rc2, shift), forces, &mut potential);
                        }
                    }
                }
            }
        }
        // Harmonic bonds.
        for b in &sys.bonds {
            let d = sys.min_image(b.i, b.j);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r == 0.0 {
                continue;
            }
            let dr = r - b.r0;
            potential += 0.5 * b.k * dr * dr;
            let fmag = -b.k * dr / r;
            for a in 0..3 {
                forces[b.i][a] += fmag * d[a];
                forces[b.j][a] -= fmag * d[a];
            }
        }
        potential
    }

    /// One truncated-shifted LJ pair interaction accumulated into
    /// `forces`/`potential`. `(rc2, shift)` are the squared cutoff and the
    /// continuity shift, precomputed once per evaluation.
    #[inline]
    fn lj_pair(
        &self,
        sys: &MolecularSystem,
        i: usize,
        j: usize,
        (rc2, shift): (f64, f64),
        forces: &mut [Vec3],
        potential: &mut f64,
    ) {
        let d = sys.min_image(i, j);
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        if r2 >= rc2 || r2 == 0.0 {
            return;
        }
        let sr2 = self.sigma * self.sigma / r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        *potential += 4.0 * self.epsilon * (sr12 - sr6) - shift;
        let fmag = 24.0 * self.epsilon * (2.0 * sr12 - sr6) / r2;
        for a in 0..3 {
            forces[i][a] += fmag * d[a];
            forces[j][a] -= fmag * d[a];
        }
    }

    /// Cell-list LJ evaluation as per-x-layer partial sums, fanned across
    /// threads with a deterministic layer-order reduction into `forces`.
    /// Returns the LJ potential. Layer buffers are drawn from and returned
    /// to `pool`.
    fn lj_layered(
        &self,
        sys: &MolecularSystem,
        cl: &CellList,
        rc2: f64,
        shift: f64,
        forces: &mut [Vec3],
        pool: &mut Vec<Vec<Vec3>>,
    ) -> f64 {
        let n = sys.len();
        let layers: Vec<(usize, Vec<Vec3>)> = (0..cl.cells_per_side())
            .map(|x| (x, pool.pop().unwrap_or_default()))
            .collect();
        // Ordered parallel map: results come back indexed by layer no
        // matter which worker ran them.
        let partials: Vec<(Vec<Vec3>, f64)> = layers
            .into_par_iter()
            .map(|(x, mut buf)| {
                buf.clear();
                buf.resize(n, [0.0; 3]);
                let mut pot = 0.0;
                cl.for_each_pair_in_x_layer(x, |i, j| {
                    self.lj_pair(sys, i, j, (rc2, shift), &mut buf, &mut pot)
                });
                (buf, pot)
            })
            .collect();
        let mut potential = 0.0;
        for (buf, pot) in partials {
            potential += pot;
            for (f, p) in forces.iter_mut().zip(&buf) {
                for a in 0..3 {
                    f[a] += p[a];
                }
            }
            pool.push(buf);
        }
        potential
    }

    /// Reference O(N²) implementation, kept for verification: the cell-list
    /// path must agree with this exactly (up to floating-point summation
    /// order).
    pub fn compute_naive(&self, sys: &MolecularSystem, forces: &mut Vec<Vec3>) -> f64 {
        let n = sys.len();
        forces.clear();
        forces.resize(n, [0.0; 3]);
        let mut potential = 0.0;
        let rc2 = self.cutoff * self.cutoff;
        let sr6c = (self.sigma * self.sigma / rc2).powi(3);
        let shift = 4.0 * self.epsilon * (sr6c * sr6c - sr6c);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sys.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 >= rc2 || r2 == 0.0 {
                    continue;
                }
                let sr2 = self.sigma * self.sigma / r2;
                let sr6 = sr2 * sr2 * sr2;
                let sr12 = sr6 * sr6;
                potential += 4.0 * self.epsilon * (sr12 - sr6) - shift;
                let fmag = 24.0 * self.epsilon * (2.0 * sr12 - sr6) / r2;
                for a in 0..3 {
                    forces[i][a] += fmag * d[a];
                    forces[j][a] -= fmag * d[a];
                }
            }
        }
        for b in &sys.bonds {
            let d = sys.min_image(b.i, b.j);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r == 0.0 {
                continue;
            }
            let dr = r - b.r0;
            potential += 0.5 * b.k * dr * dr;
            let fmag = -b.k * dr / r;
            for a in 0..3 {
                forces[b.i][a] += fmag * d[a];
                forces[b.j][a] -= fmag * d[a];
            }
        }
        potential
    }

    /// Potential energy only.
    pub fn potential_energy(&self, sys: &MolecularSystem) -> f64 {
        let mut scratch = Vec::new();
        self.compute(sys, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Bond;

    /// Two particles at given separation in a huge box (no periodic effects).
    fn dimer(r: f64, bonded: bool) -> MolecularSystem {
        MolecularSystem {
            positions: vec![[0.0; 3], [r, 0.0, 0.0]],
            velocities: vec![[0.0; 3]; 2],
            masses: vec![1.0; 2],
            bonds: if bonded {
                vec![Bond {
                    i: 0,
                    j: 1,
                    r0: 1.0,
                    k: 10.0,
                }]
            } else {
                Vec::new()
            },
            n_solute: 2,
            box_len: 1000.0,
        }
    }

    #[test]
    fn lj_minimum_at_two_sixth_sigma() {
        let ff = ForceField::default();
        let rmin = 2f64.powf(1.0 / 6.0);
        let mut forces = Vec::new();
        let e_min = ff.compute(&dimer(rmin, false), &mut forces);
        // Force ~0 at the minimum.
        assert!(forces[0][0].abs() < 1e-9, "force {forces:?}");
        // Energy below neighbours.
        let e_lo = ff.potential_energy(&dimer(rmin - 0.05, false));
        let e_hi = ff.potential_energy(&dimer(rmin + 0.05, false));
        assert!(e_min < e_lo && e_min < e_hi);
    }

    #[test]
    fn forces_are_equal_and_opposite() {
        let ff = ForceField::default();
        let mut forces = Vec::new();
        ff.compute(&dimer(1.1, true), &mut forces);
        for a in 0..3 {
            assert!((forces[0][a] + forces[1][a]).abs() < 1e-12);
        }
    }

    #[test]
    fn potential_is_zero_beyond_cutoff() {
        let ff = ForceField::default();
        assert_eq!(ff.potential_energy(&dimer(3.0, false)), 0.0);
    }

    #[test]
    fn potential_is_continuous_at_cutoff() {
        let ff = ForceField::default();
        let just_in = ff.potential_energy(&dimer(2.499_999, false));
        let just_out = ff.potential_energy(&dimer(2.500_001, false));
        assert!((just_in - just_out).abs() < 1e-4, "{just_in} vs {just_out}");
    }

    #[test]
    fn bond_energy_is_harmonic() {
        let ff = ForceField {
            epsilon: 0.0, // isolate the bond term
            ..Default::default()
        };
        let e = ff.potential_energy(&dimer(1.3, true));
        assert!((e - 0.5 * 10.0 * 0.3 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn cell_list_path_matches_naive_reference() {
        use crate::system::alanine_dipeptide_surrogate;
        let ff = ForceField::default();
        // 300 particles: compute() takes the cell-list path.
        for seed in [1u64, 7, 42] {
            let sys = alanine_dipeptide_surrogate(300, seed);
            let mut f_fast = Vec::new();
            let mut f_ref = Vec::new();
            let e_fast = ff.compute(&sys, &mut f_fast);
            let e_ref = ff.compute_naive(&sys, &mut f_ref);
            assert!(
                (e_fast - e_ref).abs() < 1e-9 * e_ref.abs().max(1.0),
                "energy mismatch: {e_fast} vs {e_ref} (seed {seed})"
            );
            for (a, b) in f_fast.iter().zip(&f_ref) {
                for k in 0..3 {
                    assert!(
                        (a[k] - b[k]).abs() < 1e-8,
                        "force mismatch {a:?} vs {b:?} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn small_systems_use_naive_path_consistently() {
        use crate::system::alanine_dipeptide_surrogate;
        let ff = ForceField::default();
        let sys = alanine_dipeptide_surrogate(50, 9);
        let mut f1 = Vec::new();
        let mut f2 = Vec::new();
        assert_eq!(ff.compute(&sys, &mut f1), ff.compute_naive(&sys, &mut f2));
        assert_eq!(f1, f2);
    }

    /// The parallel cell-list path must be bit-identical to its own serial
    /// execution: partials are keyed by x-layer and reduced in layer order,
    /// so the floating-point summation order is independent of the thread
    /// count. `ENTK_THREADS` is re-read on every compute, which lets one
    /// process compare both executions. (Other tests may observe the
    /// temporary setting; that is harmless precisely because results do not
    /// depend on it.)
    #[test]
    fn parallel_force_path_is_bit_identical_to_serial() {
        use crate::system::alanine_dipeptide_surrogate;
        let ff = ForceField::default();
        let run_with = |threads: &str| {
            std::env::set_var("ENTK_THREADS", threads);
            let mut out = Vec::new();
            for seed in [5u64, 12, 99] {
                let sys = alanine_dipeptide_surrogate(400, seed);
                let mut forces = Vec::new();
                let energy = ff.compute(&sys, &mut forces);
                out.push((energy, forces));
            }
            out
        };
        let serial = run_with("1");
        let parallel = run_with("4");
        std::env::remove_var("ENTK_THREADS");
        for ((e1, f1), (e4, f4)) in serial.iter().zip(&parallel) {
            assert_eq!(e1, e4, "potential differs between 1 and 4 threads");
            assert_eq!(f1, f4, "forces differ between 1 and 4 threads");
        }
    }

    /// Reusing one scratch across different systems gives exactly the same
    /// forces as a fresh scratch per call (pooling must not leak state).
    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
        use crate::system::alanine_dipeptide_surrogate;
        let ff = ForceField::default();
        let mut scratch = ForceScratch::default();
        for (n, seed) in [(300, 1u64), (300, 2), (150, 3), (50, 4), (400, 5)] {
            let sys = alanine_dipeptide_surrogate(n, seed);
            let mut f_pooled = Vec::new();
            let mut f_fresh = Vec::new();
            let e_pooled = ff.compute_with_scratch(&sys, &mut f_pooled, &mut scratch);
            let e_fresh = ff.compute(&sys, &mut f_fresh);
            assert_eq!(e_pooled, e_fresh, "energy differs with pooled scratch");
            assert_eq!(f_pooled, f_fresh, "forces differ with pooled scratch");
        }
    }

    #[test]
    fn force_matches_numerical_gradient() {
        let ff = ForceField::default();
        let base = dimer(1.17, true);
        let mut forces = Vec::new();
        ff.compute(&base, &mut forces);
        let h = 1e-6;
        for a in 0..3 {
            let mut plus = base.clone();
            plus.positions[0][a] += h;
            let mut minus = base.clone();
            minus.positions[0][a] -= h;
            let grad = (ff.potential_energy(&plus) - ff.potential_energy(&minus)) / (2.0 * h);
            assert!(
                (forces[0][a] + grad).abs() < 1e-5,
                "axis {a}: force {} vs -grad {}",
                forces[0][a],
                -grad
            );
        }
    }
}

impl ForceField {
    /// Steepest-descent energy minimization: moves particles along the
    /// force direction with a displacement-capped step until the maximum
    /// force component drops below `f_tol` or `max_steps` pass. Returns the
    /// final potential energy. Standard preparation before dynamics on a
    /// strained starting structure.
    pub fn minimize(
        &self,
        sys: &mut MolecularSystem,
        max_steps: usize,
        max_disp: f64,
        f_tol: f64,
    ) -> f64 {
        assert!(
            max_disp > 0.0 && f_tol >= 0.0,
            "invalid minimizer parameters"
        );
        let mut forces = Vec::new();
        let mut scratch = ForceScratch::default();
        let mut energy = self.compute_with_scratch(sys, &mut forces, &mut scratch);
        for _ in 0..max_steps {
            let fmax = forces
                .iter()
                .flat_map(|f| f.iter())
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            if fmax <= f_tol {
                break;
            }
            let scale = max_disp / fmax;
            for (p, f) in sys.positions.iter_mut().zip(&forces) {
                for a in 0..3 {
                    p[a] = (p[a] + scale * f[a]).rem_euclid(sys.box_len);
                }
            }
            let new_energy = self.compute_with_scratch(sys, &mut forces, &mut scratch);
            if new_energy > energy {
                // Overshot: undo and take a smaller effective step by
                // simply stopping — callers wanting line search can loop.
                for (p, f) in sys.positions.iter_mut().zip(&forces) {
                    for a in 0..3 {
                        p[a] = (p[a] - scale * f[a]).rem_euclid(sys.box_len);
                    }
                }
                energy = self.compute_with_scratch(sys, &mut forces, &mut scratch);
                break;
            }
            energy = new_energy;
        }
        energy
    }
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use crate::system::alanine_dipeptide_surrogate;

    #[test]
    fn minimization_lowers_energy() {
        let ff = ForceField::default();
        let mut sys = alanine_dipeptide_surrogate(120, 3);
        // Strain the structure: compress every bond.
        for i in 0..sys.n_solute {
            sys.positions[i][0] *= 0.98;
        }
        let before = ff.potential_energy(&sys);
        let after = ff.minimize(&mut sys, 200, 0.02, 1e-3);
        assert!(
            after < before,
            "minimizer must not raise energy: {before} -> {after}"
        );
    }

    #[test]
    fn minimized_oscillator_reaches_bond_length() {
        use crate::system::Bond;
        let ff = ForceField {
            epsilon: 0.0,
            ..Default::default()
        };
        let mut sys = MolecularSystem {
            positions: vec![[0.0; 3], [1.6, 0.0, 0.0]],
            velocities: vec![[0.0; 3]; 2],
            masses: vec![1.0; 2],
            bonds: vec![Bond {
                i: 0,
                j: 1,
                r0: 1.0,
                k: 50.0,
            }],
            n_solute: 2,
            box_len: 100.0,
        };
        ff.minimize(&mut sys, 2000, 0.01, 1e-6);
        let d = sys.min_image(0, 1);
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((r - 1.0).abs() < 1e-3, "bond relaxed to {r}");
    }

    #[test]
    fn converged_system_stops_early() {
        let ff = ForceField {
            epsilon: 0.0,
            ..Default::default()
        };
        use crate::system::Bond;
        let mut sys = MolecularSystem {
            positions: vec![[0.0; 3], [1.0, 0.0, 0.0]],
            velocities: vec![[0.0; 3]; 2],
            masses: vec![1.0; 2],
            bonds: vec![Bond {
                i: 0,
                j: 1,
                r0: 1.0,
                k: 50.0,
            }],
            n_solute: 2,
            box_len: 100.0,
        };
        let e = ff.minimize(&mut sys, 10, 0.01, 1e-6);
        assert!(e.abs() < 1e-12, "already at the minimum: {e}");
    }
}
