//! Trajectories: sequences of solute conformations with simple I/O.
//!
//! Analysis kernels (CoCo, LSDMap) consume these frames; the `.xyzl`
//! format ("xyz-lite") is a plain-text frame dump so examples can stage
//! real files the way the paper's workloads do.

use crate::system::MolecularSystem;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// A recorded trajectory of flat conformation vectors (3·n_solute each).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    dims: usize,
    frames: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Creates an empty trajectory of `dims`-dimensional frames.
    pub fn new(dims: usize) -> Self {
        Trajectory {
            dims,
            frames: Vec::new(),
        }
    }

    /// Dimensionality of each frame.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Records the current solute conformation of `sys`.
    pub fn record(&mut self, sys: &MolecularSystem) {
        let frame = sys.solute_conformation();
        assert_eq!(frame.len(), self.dims, "frame dimensionality mismatch");
        self.frames.push(frame);
    }

    /// Appends a raw frame.
    pub fn push(&mut self, frame: Vec<f64>) {
        assert_eq!(frame.len(), self.dims, "frame dimensionality mismatch");
        self.frames.push(frame);
    }

    /// Frame accessor.
    pub fn frame(&self, i: usize) -> &[f64] {
        &self.frames[i]
    }

    /// All frames.
    pub fn frames(&self) -> &[Vec<f64>] {
        &self.frames
    }

    /// Concatenates another trajectory of the same dimensionality.
    pub fn extend(&mut self, other: &Trajectory) {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        self.frames.extend(other.frames.iter().cloned());
    }

    /// Writes the trajectory in `.xyzl` text form.
    pub fn write_xyzl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# xyzl dims={} frames={}", self.dims, self.len())?;
        for frame in &self.frames {
            // Rust's float Display is shortest-roundtrip: lossless re-read.
            let line: Vec<String> = frame.iter().map(|v| format!("{v}")).collect();
            writeln!(w, "{}", line.join(" "))?;
        }
        Ok(())
    }

    /// Reads a `.xyzl` stream written by [`Self::write_xyzl`].
    pub fn read_xyzl<R: BufRead>(r: R) -> std::io::Result<Trajectory> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty file"))??;
        let dims: usize = header
            .split("dims=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad xyzl header")
            })?;
        let mut traj = Trajectory::new(dims);
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let frame: Result<Vec<f64>, _> =
                line.split_whitespace().map(str::parse::<f64>).collect();
            let frame = frame
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            if frame.len() != dims {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame has {} values, expected {dims}", frame.len()),
                ));
            }
            traj.frames.push(frame);
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::alanine_dipeptide_surrogate;

    #[test]
    fn record_and_access_frames() {
        let sys = alanine_dipeptide_surrogate(60, 1);
        let mut traj = Trajectory::new(3 * sys.n_solute);
        traj.record(&sys);
        traj.record(&sys);
        assert_eq!(traj.len(), 2);
        assert_eq!(traj.frame(0).len(), 66);
        assert_eq!(traj.frame(0), traj.frame(1));
    }

    #[test]
    fn xyzl_roundtrip() {
        let mut traj = Trajectory::new(3);
        traj.push(vec![1.0, -2.5, 3.25]);
        traj.push(vec![0.0, 0.125, -9.0]);
        let mut buf = Vec::new();
        traj.write_xyzl(&mut buf).unwrap();
        let back = Trajectory::read_xyzl(buf.as_slice()).unwrap();
        assert_eq!(back, traj);
    }

    #[test]
    fn read_rejects_ragged_frames() {
        let text = "# xyzl dims=3 frames=1\n1.0 2.0\n";
        assert!(Trajectory::read_xyzl(text.as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trajectory::read_xyzl("nonsense".as_bytes()).is_err());
        assert!(Trajectory::read_xyzl("".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_checks_dims() {
        Trajectory::new(3).push(vec![1.0]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trajectory::new(2);
        a.push(vec![1.0, 2.0]);
        let mut b = Trajectory::new(2);
        b.push(vec![3.0, 4.0]);
        b.push(vec![5.0, 6.0]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.frame(2), &[5.0, 6.0]);
    }
}

#[cfg(test)]
mod file_io_tests {
    use super::*;
    use crate::system::alanine_dipeptide_surrogate;

    #[test]
    fn xyzl_roundtrips_through_a_real_file() {
        let sys = alanine_dipeptide_surrogate(60, 1);
        let mut traj = Trajectory::new(3 * sys.n_solute);
        traj.record(&sys);
        traj.record(&sys);
        let dir = std::env::temp_dir().join("entk-md-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traj.xyzl");
        traj.write_xyzl(std::fs::File::create(&path).unwrap())
            .unwrap();
        let back =
            Trajectory::read_xyzl(std::io::BufReader::new(std::fs::File::open(&path).unwrap()))
                .unwrap();
        assert_eq!(back, traj);
        std::fs::remove_file(&path).ok();
    }
}
