//! # entk-pilot — pilot-job runtime (RADICAL-Pilot stand-in)
//!
//! The paper's runtime system (§III-C2): pilots are container jobs submitted
//! through SAGA that provide application-level scheduling of any number of
//! compute units onto acquired cores — decoupling the workload's total
//! resource needs from what is instantaneously available.
//!
//! Two runtimes share the same descriptions and state models:
//! [`SimRuntime`] executes in virtual time on `entk-cluster` machines (all
//! scaling experiments), and [`LocalRuntime`] executes real closures on host
//! threads (validation and examples).

#![warn(missing_docs)]

pub mod description;
pub mod local_runtime;
pub mod overheads;
pub mod profiler;
pub mod scheduler;
pub mod sim_runtime;
pub mod states;

pub use description::{
    PilotDescription, StagingDirection, StagingDirective, UnitDescription, UnitWork,
};
pub use local_runtime::{LocalCompletion, LocalRuntime};
pub use overheads::RuntimeOverheads;
pub use profiler::{PilotProfile, Profiler, UnitProfile};
pub use scheduler::{
    FirstFitScheduler, LargestFirstScheduler, PilotView, Placement, RoundRobinScheduler,
    UnitScheduler, UnitView,
};
pub use sim_runtime::{
    BatchPolicy, RuntimeEvent, RuntimeEventSink, RuntimeNotification, SimRuntime, SimRuntimeConfig,
};
pub use states::{PilotId, PilotState, UnitId, UnitState};
