//! Configurable runtime overheads.
//!
//! The paper decomposes time-to-completion into EnTK overheads and
//! RADICAL-Pilot overheads (Fig. 3 and §IV-A): per-resource costs that are
//! constant, and per-unit costs that grow linearly with the number of tasks.
//! These distributions model the RP side; the EnTK side is modelled in
//! `entk-core::overheads`.

use entk_sim::Dist;
use serde::{Deserialize, Serialize};

/// Delay model for the pilot runtime's own machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOverheads {
    /// One-time cost of preparing and submitting a pilot (container job
    /// assembly, SAGA round-trip).
    pub pilot_submission: Dist,
    /// Fixed cost per `submit_units` call (database round-trip in RP).
    pub unit_submit_fixed: Dist,
    /// Additional cost *per unit* in a `submit_units` call.
    pub unit_submit_per_unit: Dist,
    /// Unit-manager scheduling cost per unit per pass.
    pub scheduling_per_unit: Dist,
    /// Agent-side dispatch cost per unit, paid in addition to the
    /// platform's `task_launch` (process spawn) cost.
    pub agent_dispatch: Dist,
}

impl RuntimeOverheads {
    /// Calibrated defaults: per-unit costs of a few milliseconds, fixed
    /// costs of a few seconds, matching the order of magnitude RP reports.
    pub fn radical_pilot() -> Self {
        RuntimeOverheads {
            pilot_submission: Dist::Normal { mean: 2.0, sd: 0.2 },
            unit_submit_fixed: Dist::Normal {
                mean: 0.5,
                sd: 0.05,
            },
            unit_submit_per_unit: Dist::Normal {
                mean: 0.012,
                sd: 0.002,
            },
            scheduling_per_unit: Dist::Normal {
                mean: 0.004,
                sd: 0.001,
            },
            agent_dispatch: Dist::Normal {
                mean: 0.02,
                sd: 0.004,
            },
        }
    }

    /// All-zero overheads, isolating application time in ablations.
    pub fn zero() -> Self {
        RuntimeOverheads {
            pilot_submission: Dist::ZERO,
            unit_submit_fixed: Dist::ZERO,
            unit_submit_per_unit: Dist::ZERO,
            scheduling_per_unit: Dist::ZERO,
            agent_dispatch: Dist::ZERO,
        }
    }

    /// Uniformly scales all mean costs by `factor` (sensitivity ablation).
    pub fn scaled(&self, factor: f64) -> Self {
        fn scale(d: Dist, f: f64) -> Dist {
            match d {
                Dist::Constant(v) => Dist::Constant(v * f),
                Dist::Uniform { lo, hi } => Dist::Uniform {
                    lo: lo * f,
                    hi: hi * f,
                },
                Dist::Normal { mean, sd } => Dist::Normal {
                    mean: mean * f,
                    sd: sd * f,
                },
                Dist::Exponential { mean } => Dist::Exponential { mean: mean * f },
                Dist::LogNormal { mu, sigma } => Dist::LogNormal {
                    mu: mu + f.ln(),
                    sigma,
                },
            }
        }
        RuntimeOverheads {
            pilot_submission: scale(self.pilot_submission, factor),
            unit_submit_fixed: scale(self.unit_submit_fixed, factor),
            unit_submit_per_unit: scale(self.unit_submit_per_unit, factor),
            scheduling_per_unit: scale(self.scheduling_per_unit, factor),
            agent_dispatch: scale(self.agent_dispatch, factor),
        }
    }
}

impl Default for RuntimeOverheads {
    fn default() -> Self {
        Self::radical_pilot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::SimRng;

    #[test]
    fn defaults_have_small_per_unit_costs() {
        let o = RuntimeOverheads::radical_pilot();
        assert!(o.unit_submit_per_unit.mean() < 0.1);
        assert!(o.scheduling_per_unit.mean() < 0.1);
        assert!(o.pilot_submission.mean() >= 1.0);
    }

    #[test]
    fn zero_overheads_sample_to_zero() {
        let o = RuntimeOverheads::zero();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(o.pilot_submission.sample(&mut rng), 0.0);
            assert_eq!(o.agent_dispatch.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn scaling_multiplies_means() {
        let o = RuntimeOverheads::radical_pilot().scaled(10.0);
        let base = RuntimeOverheads::radical_pilot();
        assert!(
            (o.unit_submit_per_unit.mean() - 10.0 * base.unit_submit_per_unit.mean()).abs() < 1e-9
        );
        assert!((o.pilot_submission.mean() - 10.0 * base.pilot_submission.mean()).abs() < 1e-9);
    }
}
