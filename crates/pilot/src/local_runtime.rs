//! Real-execution runtime: compute units run as closures on host threads.
//!
//! The paper's validation experiments execute real kernels (mkfile/ccount,
//! MD engines). This runtime proves the same toolkit API drives real work:
//! units carry [`UnitWork::Real`] closures and execute under the `fork://`
//! SAGA adapter's core-slot discipline. Modeled units are honoured by
//! sleeping, so mixed workloads behave sensibly in examples.

use crate::description::{UnitDescription, UnitWork};
use crate::states::{UnitId, UnitState};
use entk_saga::{ForkJobService, JobState, SagaJobId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Completion report for a locally executed unit.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalCompletion {
    /// The unit.
    pub unit: UnitId,
    /// `Done` or `Failed`.
    pub state: UnitState,
    /// Failure reason, if failed.
    pub error: Option<String>,
    /// Wall-clock execution seconds.
    pub wall_secs: f64,
}

/// A pilot-like runtime executing units for real on the local host.
pub struct LocalRuntime {
    service: ForkJobService,
    job_to_unit: Mutex<HashMap<SagaJobId, UnitId>>,
    states: Mutex<HashMap<UnitId, UnitState>>,
    next_unit: Mutex<u64>,
    live: Mutex<usize>,
}

impl LocalRuntime {
    /// Creates a runtime with `cores` concurrently usable core slots —
    /// the local analogue of a pilot of that size.
    pub fn new(cores: usize) -> Self {
        LocalRuntime {
            service: ForkJobService::new(cores),
            job_to_unit: Mutex::new(HashMap::new()),
            states: Mutex::new(HashMap::new()),
            next_unit: Mutex::new(0),
            live: Mutex::new(0),
        }
    }

    /// Core slots available.
    pub fn cores(&self) -> usize {
        self.service.total_cores()
    }

    /// Units submitted but not yet completed.
    pub fn live_units(&self) -> usize {
        *self.live.lock()
    }

    /// Submits units for real execution; returns their ids immediately.
    pub fn submit_units(&self, descriptions: Vec<UnitDescription>) -> Result<Vec<UnitId>, String> {
        for d in &descriptions {
            d.validate()?;
            if d.cores > self.service.total_cores() {
                return Err(format!(
                    "unit {:?} needs {} cores; local runtime has {}",
                    d.name,
                    d.cores,
                    self.service.total_cores()
                ));
            }
        }
        let mut ids = Vec::with_capacity(descriptions.len());
        for d in descriptions {
            let id = {
                let mut next = self.next_unit.lock();
                let id = UnitId(*next);
                *next += 1;
                id
            };
            self.states.lock().insert(id, UnitState::Scheduling);
            *self.live.lock() += 1;
            let payload: Box<dyn FnOnce() -> Result<(), String> + Send> = match d.work {
                UnitWork::Real(f) => Box::new(move || f()),
                UnitWork::Modeled(dur) => Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_secs_f64(
                        dur.as_secs_f64().min(5.0), // cap so examples stay snappy
                    ));
                    Ok(())
                }),
            };
            let job = self.service.submit(d.cores, payload);
            self.job_to_unit.lock().insert(job, id);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Blocks until some unit completes.
    pub fn wait_any(&self) -> LocalCompletion {
        let completion = self.service.wait_any();
        let unit = *self
            .job_to_unit
            .lock()
            .get(&completion.id)
            .expect("completion for a submitted job");
        let state = match completion.state {
            JobState::Done => UnitState::Done,
            _ => UnitState::Failed,
        };
        self.states.lock().insert(unit, state);
        *self.live.lock() -= 1;
        LocalCompletion {
            unit,
            state,
            error: completion.error,
            wall_secs: completion.wall_secs,
        }
    }

    /// Current state of a unit.
    pub fn unit_state(&self, id: UnitId) -> Option<UnitState> {
        self.states.lock().get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn real_unit(
        name: &str,
        f: impl Fn() -> Result<(), String> + Send + Sync + 'static,
    ) -> UnitDescription {
        UnitDescription {
            name: name.into(),
            cores: 1,
            mpi: false,
            work: UnitWork::Real(Arc::new(f)),
            input_staging: Vec::new(),
            output_staging: Vec::new(),
        }
    }

    #[test]
    fn real_units_execute_and_complete() {
        let rt = LocalRuntime::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let units: Vec<_> = (0..6)
            .map(|i| {
                let c = Arc::clone(&counter);
                real_unit(&format!("t{i}"), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
            })
            .collect();
        rt.submit_units(units).unwrap();
        for _ in 0..6 {
            let c = rt.wait_any();
            assert_eq!(c.state, UnitState::Done);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        assert_eq!(rt.live_units(), 0);
    }

    #[test]
    fn failing_unit_reports_error() {
        let rt = LocalRuntime::new(1);
        rt.submit_units(vec![real_unit("bad", || Err("boom".into()))])
            .unwrap();
        let c = rt.wait_any();
        assert_eq!(c.state, UnitState::Failed);
        assert_eq!(c.error.as_deref(), Some("boom"));
    }

    #[test]
    fn oversized_unit_rejected_up_front() {
        let rt = LocalRuntime::new(2);
        let d = UnitDescription::modeled("big", SimDuration::from_secs(1))
            .with_cores(8)
            .with_mpi(true);
        assert!(rt.submit_units(vec![d]).is_err());
        assert_eq!(rt.live_units(), 0);
    }

    #[test]
    fn modeled_units_sleep_briefly() {
        let rt = LocalRuntime::new(1);
        rt.submit_units(vec![UnitDescription::modeled(
            "nap",
            SimDuration::from_millis(20),
        )])
        .unwrap();
        let c = rt.wait_any();
        assert_eq!(c.state, UnitState::Done);
        assert!(c.wall_secs >= 0.015, "slept {}", c.wall_secs);
    }
}
