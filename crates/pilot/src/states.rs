//! Pilot and compute-unit state machines.
//!
//! Mirrors RADICAL-Pilot's models (Merzky et al., arXiv:1512.08194), collapsed
//! to the states that matter for overhead accounting: a pilot is a container
//! job; a compute unit traverses manager-side scheduling, input staging,
//! execution on pilot cores, and output staging.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a pilot within one runtime session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PilotId(pub u64);

impl fmt::Display for PilotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pilot.{:04}", self.0)
    }
}

/// Identifier of a compute unit within one runtime session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId(pub u64);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit.{:06}", self.0)
    }
}

/// Pilot lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PilotState {
    /// Described, not yet submitted to the resource.
    New,
    /// Submitted; container job queued or starting on the resource.
    Launching,
    /// Agent running; units may execute.
    Active,
    /// Finished normally (all work done, resources released).
    Done,
    /// Cancelled by the application.
    Canceled,
    /// Failed (rejected, or killed by wall time).
    Failed,
}

impl PilotState {
    /// True for states a pilot can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PilotState::Done | PilotState::Canceled | PilotState::Failed
        )
    }

    /// Whether `self -> next` is legal.
    pub fn can_transition_to(self, next: PilotState) -> bool {
        use PilotState::*;
        matches!(
            (self, next),
            (New, Launching)
                | (New, Failed)
                | (New, Canceled)
                | (Launching, Active)
                | (Launching, Canceled)
                | (Launching, Failed)
                | (Active, Done)
                | (Active, Canceled)
                | (Active, Failed)
        )
    }
}

/// Compute-unit lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitState {
    /// Accepted by the unit manager.
    New,
    /// Waiting for / being assigned to a pilot with free cores.
    Scheduling,
    /// Input staging to the target resource.
    StagingInput,
    /// Executing on pilot cores.
    Executing,
    /// Output staging from the resource.
    StagingOutput,
    /// Finished successfully.
    Done,
    /// Cancelled by the application.
    Canceled,
    /// Failed during staging or execution.
    Failed,
}

impl UnitState {
    /// True for states a unit can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            UnitState::Done | UnitState::Canceled | UnitState::Failed
        )
    }

    /// Whether `self -> next` is legal.
    pub fn can_transition_to(self, next: UnitState) -> bool {
        use UnitState::*;
        if self == next {
            return false;
        }
        match self {
            New => matches!(next, Scheduling | Canceled | Failed),
            Scheduling => matches!(next, StagingInput | Canceled | Failed),
            StagingInput => matches!(next, Executing | Canceled | Failed),
            Executing => matches!(next, StagingOutput | Done | Canceled | Failed),
            StagingOutput => matches!(next, Done | Canceled | Failed),
            Done | Canceled | Failed => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pilot_happy_path() {
        use PilotState::*;
        let mut s = New;
        for next in [Launching, Active, Done] {
            assert!(s.can_transition_to(next), "{s:?} -> {next:?}");
            s = next;
        }
        assert!(s.is_terminal());
    }

    #[test]
    fn unit_happy_path_with_and_without_staging_out() {
        use UnitState::*;
        for path in [
            vec![Scheduling, StagingInput, Executing, StagingOutput, Done],
            vec![Scheduling, StagingInput, Executing, Done],
        ] {
            let mut s = New;
            for next in path {
                assert!(s.can_transition_to(next), "{s:?} -> {next:?}");
                s = next;
            }
            assert_eq!(s, Done);
        }
    }

    #[test]
    fn unit_cancel_possible_everywhere_before_terminal() {
        use UnitState::*;
        for s in [New, Scheduling, StagingInput, Executing, StagingOutput] {
            assert!(s.can_transition_to(Canceled), "{s:?}");
        }
        for s in [Done, Canceled, Failed] {
            assert!(!s.can_transition_to(Canceled), "{s:?}");
        }
    }

    #[test]
    fn no_self_transitions() {
        use UnitState::*;
        for s in [
            New,
            Scheduling,
            StagingInput,
            Executing,
            StagingOutput,
            Done,
        ] {
            assert!(!s.can_transition_to(s));
        }
    }

    proptest! {
        /// Terminal unit states absorb all transition attempts.
        #[test]
        fn prop_unit_terminals_absorb(seq in proptest::collection::vec(0usize..8, 1..32)) {
            use UnitState::*;
            let all = [New, Scheduling, StagingInput, Executing, StagingOutput, Done, Canceled, Failed];
            let mut s = New;
            for i in seq {
                let next = all[i];
                if s.can_transition_to(next) {
                    prop_assert!(!s.is_terminal());
                    s = next;
                }
            }
        }
    }
}
