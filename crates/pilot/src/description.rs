//! Descriptions of pilots and compute units.

use entk_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Request for a pilot: a container job on a target resource whose cores are
/// then scheduled at the application level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PilotDescription {
    /// Target resource label, e.g. `"xsede.comet"`.
    pub resource: String,
    /// Cores the container job requests.
    pub cores: usize,
    /// Container job wall time.
    pub walltime: SimDuration,
    /// Batch queue (bookkeeping).
    pub queue: String,
    /// Project / allocation charged (bookkeeping).
    pub project: String,
}

impl PilotDescription {
    /// Creates a description with defaults for queue/project.
    pub fn new(resource: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        PilotDescription {
            resource: resource.into(),
            cores,
            walltime,
            queue: "normal".into(),
            project: "TG-MCB090174".into(),
        }
    }

    /// Validates the description.
    pub fn validate(&self) -> Result<(), String> {
        if self.resource.is_empty() {
            return Err("pilot resource must not be empty".into());
        }
        if self.cores == 0 {
            return Err("pilot must request at least one core".into());
        }
        if self.walltime.is_zero() {
            return Err("pilot wall time must be positive".into());
        }
        Ok(())
    }
}

/// Direction of a staging directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StagingDirection {
    /// Move data to the resource before execution.
    In,
    /// Move data from the resource after execution.
    Out,
}

/// A data-movement directive attached to a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagingDirective {
    /// Logical file label.
    pub label: String,
    /// Payload size in bytes (drives modelled transfer time).
    pub bytes: u64,
    /// Transfer direction.
    pub direction: StagingDirection,
}

/// The work a unit performs.
///
/// Simulated experiments carry a pre-sampled duration (from the kernel's
/// cost model); local execution carries a real closure.
#[derive(Clone)]
pub enum UnitWork {
    /// Simulated execution: occupy cores for this long in virtual time.
    Modeled(SimDuration),
    /// Real execution: run this closure on host threads.
    Real(Arc<dyn Fn() -> Result<(), String> + Send + Sync>),
}

impl fmt::Debug for UnitWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitWork::Modeled(d) => write!(f, "Modeled({d})"),
            UnitWork::Real(_) => write!(f, "Real(<closure>)"),
        }
    }
}

/// Request for one compute unit (task).
#[derive(Debug, Clone)]
pub struct UnitDescription {
    /// Task name (used in traces and reports).
    pub name: String,
    /// Cores the unit occupies while executing.
    pub cores: usize,
    /// Whether the unit is an MPI task (may span nodes).
    pub mpi: bool,
    /// The work itself.
    pub work: UnitWork,
    /// Input staging directives.
    pub input_staging: Vec<StagingDirective>,
    /// Output staging directives.
    pub output_staging: Vec<StagingDirective>,
}

impl UnitDescription {
    /// Creates a single-core modeled unit with no staging.
    pub fn modeled(name: impl Into<String>, duration: SimDuration) -> Self {
        UnitDescription {
            name: name.into(),
            cores: 1,
            mpi: false,
            work: UnitWork::Modeled(duration),
            input_staging: Vec::new(),
            output_staging: Vec::new(),
        }
    }

    /// Sets the core count (builder style).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Marks the unit as MPI (builder style).
    pub fn with_mpi(mut self, mpi: bool) -> Self {
        self.mpi = mpi;
        self
    }

    /// Adds an input staging directive (builder style).
    pub fn with_input(mut self, label: impl Into<String>, bytes: u64) -> Self {
        self.input_staging.push(StagingDirective {
            label: label.into(),
            bytes,
            direction: StagingDirection::In,
        });
        self
    }

    /// Adds an output staging directive (builder style).
    pub fn with_output(mut self, label: impl Into<String>, bytes: u64) -> Self {
        self.output_staging.push(StagingDirective {
            label: label.into(),
            bytes,
            direction: StagingDirection::Out,
        });
        self
    }

    /// Validates the description.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err(format!("unit {:?} must use at least one core", self.name));
        }
        if self.cores > 1 && !self.mpi {
            return Err(format!(
                "unit {:?} uses {} cores but is not marked MPI",
                self.name, self.cores
            ));
        }
        Ok(())
    }

    /// Total bytes staged in.
    pub fn input_bytes(&self) -> u64 {
        self.input_staging.iter().map(|s| s.bytes).sum()
    }

    /// Total bytes staged out.
    pub fn output_bytes(&self) -> u64 {
        self.output_staging.iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilot_description_validation() {
        assert!(
            PilotDescription::new("xsede.comet", 192, SimDuration::from_secs(3600))
                .validate()
                .is_ok()
        );
        assert!(PilotDescription::new("", 192, SimDuration::from_secs(1))
            .validate()
            .is_err());
        assert!(PilotDescription::new("x", 0, SimDuration::from_secs(1))
            .validate()
            .is_err());
        assert!(PilotDescription::new("x", 1, SimDuration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn unit_builder_accumulates_staging() {
        let u = UnitDescription::modeled("sim", SimDuration::from_secs(6))
            .with_cores(16)
            .with_mpi(true)
            .with_input("coords.crd", 1 << 20)
            .with_output("traj.nc", 4 << 20);
        assert_eq!(u.cores, 16);
        assert!(u.mpi);
        assert_eq!(u.input_bytes(), 1 << 20);
        assert_eq!(u.output_bytes(), 4 << 20);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn multicore_requires_mpi_flag() {
        let u = UnitDescription::modeled("sim", SimDuration::from_secs(1)).with_cores(4);
        assert!(u.validate().is_err());
        assert!(u.with_mpi(true).validate().is_ok());
    }

    #[test]
    fn zero_core_unit_rejected() {
        let u = UnitDescription::modeled("sim", SimDuration::from_secs(1)).with_cores(0);
        assert!(u.validate().is_err());
    }
}
