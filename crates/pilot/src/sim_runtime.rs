//! The simulated pilot runtime: pilot manager + unit manager + agent,
//! advanced by discrete events.
//!
//! Reproduces the RADICAL-Pilot execution model (paper §III-C2): pilots are
//! container jobs acquired through SAGA; compute units are scheduled onto
//! pilot cores at the application level, so more tasks than cores can be
//! expressed and executed as capacity frees up.

use crate::description::{PilotDescription, UnitDescription, UnitWork};
use crate::overheads::RuntimeOverheads;
use crate::profiler::Profiler;
use crate::scheduler::{FirstFitScheduler, PilotView, UnitScheduler, UnitView};
use crate::states::{PilotId, PilotState, UnitId, UnitState};
use entk_cluster::{
    Cluster, ClusterEvent, EasyBackfillScheduler, FairShareScheduler, FifoScheduler, PlatformSpec,
};
use entk_saga::{JobDescription, JobState, JobUpdate, SagaJobId, SimJobService};
use entk_sim::{
    Context, DenseStore, SharedTelemetry, SimDuration, SimRng, SimTime, Subject, Tracer,
};

/// Events the runtime schedules for itself.
#[derive(Debug, Clone)]
pub enum RuntimeEvent {
    /// Pilot submission overhead paid; hand the container job to SAGA.
    PilotSubmitted(PilotId),
    /// Unit submission overhead paid; units enter scheduling.
    UnitsSubmitted(Vec<UnitId>),
    /// Run a unit-scheduler pass.
    SchedulePass,
    /// A unit's input staging finished.
    StageInDone(UnitId),
    /// A unit's launch overhead was paid; execution begins.
    LaunchDone(UnitId),
    /// A unit's modelled execution finished.
    ExecDone(UnitId),
    /// A unit's output staging finished.
    StageOutDone(UnitId),
}

/// State changes reported to the application layer (EnTK).
#[derive(Debug, Clone)]
pub enum RuntimeNotification {
    /// A pilot changed state.
    Pilot {
        /// The pilot.
        id: PilotId,
        /// New state.
        state: PilotState,
        /// When.
        time: SimTime,
    },
    /// A unit changed state.
    Unit {
        /// The unit.
        id: UnitId,
        /// New state.
        state: UnitState,
        /// When.
        time: SimTime,
        /// Failure reason, when `state == Failed`.
        detail: Option<String>,
    },
    /// A node crash shrank a pilot's allocation mid-run; it keeps running
    /// on what remains (shrink-or-die: losing every core fails it instead).
    PilotShrunk {
        /// The pilot.
        id: PilotId,
        /// Cores lost to the crash.
        lost_cores: usize,
        /// Cores the pilot still holds.
        remaining_cores: usize,
        /// When.
        time: SimTime,
    },
}

/// Batch-queue policy the target machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Strict FIFO with head-of-line blocking (default).
    #[default]
    Fifo,
    /// EASY backfill.
    Backfill,
    /// Fair share with the given usage half-life in seconds.
    FairShare,
}

/// Configuration of a simulated runtime session.
#[derive(Debug, Clone)]
pub struct SimRuntimeConfig {
    /// Runtime overhead model.
    pub overheads: RuntimeOverheads,
    /// Probability that a unit's execution fails (failure injection).
    pub unit_failure_rate: f64,
    /// RNG seed for the runtime's own draws.
    pub seed: u64,
    /// Batch-queue policy of the target machine.
    pub batch_policy: BatchPolicy,
    /// Plugin scheduler factory; when set it overrides `batch_policy`.
    /// Federated sessions build one fresh scheduler per member cluster so
    /// stateful policies (fair-share ledgers, rotation cursors) are never
    /// shared across machines.
    pub scheduler: Option<entk_cluster::SchedulerFactory>,
    /// Collect the cross-layer trace and metrics. Disabling skips every
    /// telemetry record, which matters at million-task scale where the
    /// trace itself (tens of millions of records) dominates memory and a
    /// measurable share of wall time. Simulated timings and RNG draws are
    /// identical either way.
    pub telemetry: bool,
}

impl Default for SimRuntimeConfig {
    fn default() -> Self {
        SimRuntimeConfig {
            overheads: RuntimeOverheads::radical_pilot(),
            unit_failure_rate: 0.0,
            seed: 0x5EED,
            batch_policy: BatchPolicy::Fifo,
            scheduler: None,
            telemetry: true,
        }
    }
}

struct PilotRecord {
    description: PilotDescription,
    state: PilotState,
    saga_job: Option<SagaJobId>,
    free_cores: usize,
}

struct UnitRecord {
    description: UnitDescription,
    state: UnitState,
    pilot: Option<PilotId>,
    /// Cores currently held on the pilot (released at exec end).
    holding: usize,
    /// Pending `ExecDone` event, cancellable if the unit dies early.
    exec_event: Option<entk_sim::EventId>,
    /// Slot in the persistent waiting list while in `Scheduling`.
    waiting_slot: Option<u32>,
}

/// Driver event bound: the top-level enum must absorb both runtime and
/// cluster events.
pub trait RuntimeEventSink: From<RuntimeEvent> + From<ClusterEvent> {}
impl<T: From<RuntimeEvent> + From<ClusterEvent>> RuntimeEventSink for T {}

/// The simulated pilot runtime for one target resource.
pub struct SimRuntime {
    service: SimJobService,
    config: SimRuntimeConfig,
    rng: SimRng,
    scheduler: Box<dyn UnitScheduler>,
    // Dense slab stores: pilot and unit ids are assigned sequentially and
    // never removed, so records live in plain vectors indexed by the raw
    // id — no hashing on the per-event hot path, and iteration is in id
    // order (deterministic without sorting).
    pilots: Vec<PilotRecord>,
    saga_to_pilot: DenseStore<PilotId>,
    units: Vec<UnitRecord>,
    /// Persistent waiting list in submission order. Placed, cancelled, and
    /// failed entries become tombstones instead of being spliced out (no
    /// per-placement `retain`); `compact_waiting` skips leading tombstones
    /// and rebuilds once dead entries outnumber live ones, keeping scans
    /// amortized O(live).
    waiting: Vec<UnitView>,
    /// First slot that may hold a live entry.
    waiting_head: usize,
    /// Live (placeable) entries in `waiting[waiting_head..]`.
    waiting_live: usize,
    /// Tombstones in `waiting[waiting_head..]`.
    waiting_dead: usize,
    /// Monotone upper bound on waiting units' core demand; the doomed-unit
    /// scan in `schedule_pass` runs only when this exceeds the largest
    /// pilot, instead of partitioning the whole list every pass.
    max_waiting_cores: usize,
    /// Set when the waiting set grew or capacity may have freed since the
    /// last pass. Clear means a pass would place nothing (schedulers are
    /// work-conserving, see `UnitScheduler`), so the pass is skipped.
    sched_dirty: bool,
    /// Set when any pilot's state, size, or existence changed; the cached
    /// `pilot_views` / `max_pilot_cores` below are rebuilt lazily.
    pilots_dirty: bool,
    /// Cached scheduler-facing pilot views, index == pilot id.
    pilot_views: Vec<PilotView>,
    /// Cached max core count over non-terminal pilots.
    max_pilot_cores: usize,
    profiler: Profiler,
    telemetry: SharedTelemetry,
    /// Maintained count of non-terminal units, mirrored into the
    /// `pilot.live_units` gauge without rescanning the unit store.
    live: usize,
    next_pilot: u64,
    next_unit: u64,
}

impl SimRuntime {
    /// Creates a runtime targeting one simulated machine.
    pub fn new(spec: PlatformSpec, config: SimRuntimeConfig) -> Self {
        let telemetry = if config.telemetry {
            SharedTelemetry::new()
        } else {
            SharedTelemetry::disabled()
        };
        Self::with_telemetry(spec, config, telemetry)
    }

    /// Like [`SimRuntime::new`], but recording into a caller-provided
    /// telemetry pipeline. Federated sessions pass each cluster's runtime a
    /// subject-offset view of one shared pipeline so all clusters append to
    /// a single chronologically interleaved trace.
    pub fn with_telemetry(
        spec: PlatformSpec,
        config: SimRuntimeConfig,
        telemetry: SharedTelemetry,
    ) -> Self {
        let seed = config.seed;
        let scheduler: Box<dyn entk_cluster::BatchScheduler> = match &config.scheduler {
            Some(factory) => factory.build(),
            None => match config.batch_policy {
                BatchPolicy::Fifo => Box::new(FifoScheduler),
                BatchPolicy::Backfill => Box::new(EasyBackfillScheduler),
                BatchPolicy::FairShare => Box::new(FairShareScheduler::new(3600.0)),
            },
        };
        let mut cluster = Cluster::with_scheduler(spec, seed ^ 0xC1u64, scheduler);
        cluster.set_telemetry(telemetry.clone());
        SimRuntime {
            service: SimJobService::from_cluster(cluster),
            rng: SimRng::seed_from_u64(seed),
            config,
            scheduler: Box::new(FirstFitScheduler),
            pilots: Vec::new(),
            saga_to_pilot: DenseStore::new(),
            units: Vec::new(),
            waiting: Vec::new(),
            waiting_head: 0,
            waiting_live: 0,
            waiting_dead: 0,
            max_waiting_cores: 0,
            sched_dirty: false,
            pilots_dirty: false,
            pilot_views: Vec::new(),
            max_pilot_cores: 0,
            profiler: Profiler::new(),
            telemetry,
            live: 0,
            next_pilot: 0,
            next_unit: 0,
        }
    }

    /// Replaces the unit scheduler (ablation hook).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn UnitScheduler>) {
        self.scheduler = scheduler;
    }

    /// The machine this runtime targets.
    pub fn platform(&self) -> &PlatformSpec {
        self.service.cluster().spec()
    }

    /// Collected profiles.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// A snapshot of the session's structured event trace
    /// (RADICAL-Pilot-style profiler records: `unit_scheduled`,
    /// `unit_exec_start`, `unit_done`, …) across all three layers.
    pub fn tracer(&self) -> Tracer {
        self.telemetry.snapshot().tracer
    }

    /// The shared telemetry pipeline this runtime (and its cluster) record
    /// into; clone it into higher layers to join the same trace.
    pub fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    /// Current state of a pilot.
    pub fn pilot_state(&self, id: PilotId) -> Option<PilotState> {
        self.pilots.get(id.0 as usize).map(|p| p.state)
    }

    /// Current state of a unit.
    pub fn unit_state(&self, id: UnitId) -> Option<UnitState> {
        self.units.get(id.0 as usize).map(|u| u.state)
    }

    /// Free cores across active pilots.
    pub fn free_cores(&self) -> usize {
        self.pilots
            .iter()
            .filter(|p| p.state == PilotState::Active)
            .map(|p| p.free_cores)
            .sum()
    }

    /// Number of units not yet in a terminal state (O(1): the count is
    /// maintained incrementally, not rescanned).
    pub fn live_units(&self) -> usize {
        self.live
    }

    /// Submits a pilot. The pilot-submission overhead is paid before the
    /// container job reaches SAGA.
    pub fn submit_pilot<E: RuntimeEventSink>(
        &mut self,
        description: PilotDescription,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) -> Result<PilotId, String> {
        description.validate()?;
        let id = PilotId(self.next_pilot);
        self.next_pilot += 1;
        self.profiler.pilot_mut(id).submitted = Some(ctx.now());
        debug_assert_eq!(id.0 as usize, self.pilots.len());
        self.pilots.push(PilotRecord {
            free_cores: description.cores,
            description,
            state: PilotState::New,
            saga_job: None,
        });
        self.pilots_dirty = true;
        self.telemetry
            .record(ctx.now(), "pilot", "pilot_submitted", Subject::Pilot(id.0));
        let delay = self
            .config
            .overheads
            .pilot_submission
            .sample_duration(&mut self.rng);
        ctx.schedule_in(delay, RuntimeEvent::PilotSubmitted(id));
        out.push(RuntimeNotification::Pilot {
            id,
            state: PilotState::New,
            time: ctx.now(),
        });
        Ok(id)
    }

    /// Submits a batch of units. Per-call and per-unit submission overheads
    /// are paid before the units become schedulable.
    pub fn submit_units<E: RuntimeEventSink>(
        &mut self,
        descriptions: Vec<UnitDescription>,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) -> Result<Vec<UnitId>, String> {
        let mut ids = Vec::with_capacity(descriptions.len());
        for d in &descriptions {
            d.validate()?;
        }
        let n = descriptions.len() as u64;
        self.units.reserve(descriptions.len());
        for description in descriptions {
            let id = UnitId(self.next_unit);
            self.next_unit += 1;
            self.profiler.unit_mut(id).submitted = Some(ctx.now());
            debug_assert_eq!(id.0 as usize, self.units.len());
            self.units.push(UnitRecord {
                description,
                state: UnitState::New,
                pilot: None,
                holding: 0,
                exec_event: None,
                waiting_slot: None,
            });
            self.live += 1;
            self.telemetry
                .record(ctx.now(), "pilot", "unit_submitted", Subject::Unit(id.0));
            out.push(RuntimeNotification::Unit {
                id,
                state: UnitState::New,
                time: ctx.now(),
                detail: None,
            });
            ids.push(id);
        }
        self.telemetry
            .gauge("pilot.live_units", ctx.now(), self.live as f64);
        let fixed = self
            .config
            .overheads
            .unit_submit_fixed
            .sample(&mut self.rng);
        let per = self
            .config
            .overheads
            .unit_submit_per_unit
            .sample(&mut self.rng);
        let delay = SimDuration::from_secs_f64(fixed + per * n as f64);
        ctx.schedule_in(delay, RuntimeEvent::UnitsSubmitted(ids.clone()));
        Ok(ids)
    }

    /// Cancels a unit that has not finished.
    pub fn cancel_unit<E: RuntimeEventSink>(
        &mut self,
        id: UnitId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(unit) = self.units.get_mut(id.0 as usize) else {
            return;
        };
        if unit.state.is_terminal() || !unit.state.can_transition_to(UnitState::Canceled) {
            return;
        }
        let released = unit.holding;
        let pilot = unit.pilot;
        unit.holding = 0;
        unit.state = UnitState::Canceled;
        let slot = unit.waiting_slot.take();
        if let Some(ev) = unit.exec_event.take() {
            ctx.cancel(ev);
        }
        if let Some(slot) = slot {
            self.tombstone_waiting_slot(slot as usize, id);
        }
        self.profiler.unit_mut(id).done = Some(ctx.now());
        self.note_unit_terminal(id, "unit_canceled", ctx.now());
        if let (Some(pid), true) = (pilot, released > 0) {
            if let Some(p) = self.pilots.get_mut(pid.0 as usize) {
                p.free_cores += released;
                self.pilots_dirty = true;
            }
            self.sched_dirty = true;
            ctx.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        }
        out.push(RuntimeNotification::Unit {
            id,
            state: UnitState::Canceled,
            time: ctx.now(),
            detail: None,
        });
    }

    /// Cancels a pilot: its container job is cancelled and units currently
    /// on it fail; waiting units stay queued for other pilots.
    pub fn cancel_pilot<E: RuntimeEventSink>(
        &mut self,
        id: PilotId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(p) = self.pilots.get(id.0 as usize) else {
            return;
        };
        if p.state.is_terminal() {
            return;
        }
        if let Some(saga) = p.saga_job {
            let mut updates = Vec::new();
            self.service.cancel(saga, ctx, &mut updates);
            self.apply_saga_updates(updates, ctx, out);
        } else {
            self.set_pilot_state(id, PilotState::Canceled, ctx.now(), out);
        }
    }

    /// Completes a pilot gracefully: releases the allocation back to the
    /// batch system (used by the resource handle's `deallocate`).
    pub fn finish_pilot<E: RuntimeEventSink>(
        &mut self,
        id: PilotId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(p) = self.pilots.get(id.0 as usize) else {
            return;
        };
        match p.state {
            PilotState::Active => {
                if let Some(saga) = p.saga_job {
                    let mut updates = Vec::new();
                    self.service.finish(saga, ctx, &mut updates);
                    self.apply_saga_updates(updates, ctx, out);
                }
            }
            PilotState::New | PilotState::Launching => self.cancel_pilot(id, ctx, out),
            _ => {}
        }
    }

    /// Handles a runtime event.
    pub fn handle<E: RuntimeEventSink>(
        &mut self,
        event: RuntimeEvent,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        match event {
            RuntimeEvent::PilotSubmitted(id) => self.on_pilot_submitted(id, ctx, out),
            RuntimeEvent::UnitsSubmitted(ids) => {
                for id in ids {
                    let slot = self.waiting.len() as u32;
                    let unit = self
                        .units
                        .get_mut(id.0 as usize)
                        .expect("submitted unit exists");
                    if unit.state == UnitState::New {
                        unit.state = UnitState::Scheduling;
                        unit.waiting_slot = Some(slot);
                        let cores = unit.description.cores;
                        self.waiting.push(UnitView { id, cores });
                        self.waiting_live += 1;
                        self.max_waiting_cores = self.max_waiting_cores.max(cores);
                        self.sched_dirty = true;
                        out.push(RuntimeNotification::Unit {
                            id,
                            state: UnitState::Scheduling,
                            time: ctx.now(),
                            detail: None,
                        });
                    }
                }
                self.schedule_pass(ctx, out);
            }
            RuntimeEvent::SchedulePass => self.schedule_pass(ctx, out),
            RuntimeEvent::StageInDone(id) => self.on_stagein_done(id, ctx),
            RuntimeEvent::LaunchDone(id) => self.on_launch_done(id, ctx, out),
            RuntimeEvent::ExecDone(id) => self.on_exec_done(id, ctx, out),
            RuntimeEvent::StageOutDone(id) => self.on_stageout_done(id, ctx, out),
        }
    }

    /// Handles a cluster event (queue movement, walltime, etc.).
    pub fn handle_cluster<E: RuntimeEventSink>(
        &mut self,
        event: ClusterEvent,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let mut updates = Vec::new();
        self.service.handle_cluster(event, ctx, &mut updates);
        self.apply_saga_updates(updates, ctx, out);
    }

    /// Mutable access to the cluster, for tests and transfer modelling.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        self.service.cluster_mut()
    }

    fn on_pilot_submitted<E: RuntimeEventSink>(
        &mut self,
        id: PilotId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let p = self.pilots.get_mut(id.0 as usize).expect("pilot exists");
        if p.state != PilotState::New {
            return;
        }
        let jd = JobDescription {
            executable: "radical-pilot-agent".into(),
            total_cpu_count: p.description.cores,
            wall_time_limit: p.description.walltime,
            queue: p.description.queue.clone(),
            project: p.description.project.clone(),
            ..Default::default()
        };
        let mut updates = Vec::new();
        let saga = self
            .service
            .submit(jd, ctx, &mut updates)
            .expect("pilot job description is valid");
        self.pilots[id.0 as usize].saga_job = Some(saga);
        self.saga_to_pilot.insert(saga.0, id);
        self.profiler.pilot_mut(id).launched = Some(ctx.now());
        self.telemetry
            .record(ctx.now(), "pilot", "pilot_launched", Subject::Pilot(id.0));
        self.set_pilot_state(id, PilotState::Launching, ctx.now(), out);
        self.apply_saga_updates(updates, ctx, out);
    }

    fn apply_saga_updates<E: RuntimeEventSink>(
        &mut self,
        updates: Vec<JobUpdate>,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        for u in updates {
            let Some(&pid) = self.saga_to_pilot.get(u.id.0) else {
                continue;
            };
            if let Some(lost) = u.shrunk_by {
                self.shrink_pilot(pid, lost, u.time, ctx, out);
                continue;
            }
            match u.state {
                JobState::Running => {
                    self.telemetry
                        .record(u.time, "pilot", "pilot_active", Subject::Pilot(pid.0));
                    self.profiler.pilot_mut(pid).active = Some(u.time);
                    self.set_pilot_state(pid, PilotState::Active, u.time, out);
                    // New capacity became available.
                    self.sched_dirty = true;
                    ctx.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
                }
                JobState::Done => {
                    self.on_pilot_gone(pid, PilotState::Done, u.time, ctx, out);
                }
                JobState::Canceled => {
                    self.on_pilot_gone(pid, PilotState::Canceled, u.time, ctx, out);
                }
                JobState::Failed => {
                    self.on_pilot_gone(pid, PilotState::Failed, u.time, ctx, out);
                }
                _ => {}
            }
        }
    }

    /// Mid-run capacity loss: a node crash took `lost` cores from the
    /// pilot's allocation. Free cores absorb what they can; the remaining
    /// deficit is covered by killing in-flight units (lowest `UnitId`
    /// first, so the outcome is deterministic). Cores a killed unit held
    /// beyond the deficit survive on other nodes and return to the pilot's
    /// free pool for rescheduling.
    fn shrink_pilot<E: RuntimeEventSink>(
        &mut self,
        pid: PilotId,
        lost: usize,
        time: SimTime,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(p) = self.pilots.get_mut(pid.0 as usize) else {
            return;
        };
        if p.state.is_terminal() {
            return;
        }
        let from_free = p.free_cores.min(lost);
        p.free_cores -= from_free;
        p.description.cores = p.description.cores.saturating_sub(lost);
        let remaining_cores = p.description.cores;
        self.pilots_dirty = true;
        let mut deficit = lost - from_free;
        if deficit > 0 {
            // Id order by construction: the unit store iterates densely.
            let inflight: Vec<UnitId> = self
                .units
                .iter()
                .enumerate()
                .filter(|(_, u)| u.pilot == Some(pid) && u.holding > 0 && !u.state.is_terminal())
                .map(|(i, _)| UnitId(i as u64))
                .collect();
            for id in inflight {
                if deficit == 0 {
                    break;
                }
                let unit = &mut self.units[id.0 as usize];
                if !unit.state.can_transition_to(UnitState::Failed) {
                    continue;
                }
                let held = unit.holding;
                unit.holding = 0;
                unit.state = UnitState::Failed;
                if let Some(ev) = unit.exec_event.take() {
                    ctx.cancel(ev);
                }
                self.profiler.unit_mut(id).done = Some(time);
                self.note_unit_terminal(id, "unit_failed", time);
                out.push(RuntimeNotification::Unit {
                    id,
                    state: UnitState::Failed,
                    time,
                    detail: Some("node crash took this unit's cores".into()),
                });
                let absorbed = held.min(deficit);
                deficit -= absorbed;
                let surplus = held - absorbed;
                if surplus > 0 {
                    self.pilots[pid.0 as usize].free_cores += surplus;
                }
            }
        }
        self.telemetry
            .record(time, "pilot", "pilot_shrunk", Subject::Pilot(pid.0));
        out.push(RuntimeNotification::PilotShrunk {
            id: pid,
            lost_cores: lost,
            remaining_cores,
            time,
        });
        // Surplus cores may have returned, and the shrunken size changes
        // which waiting units are doomed.
        self.sched_dirty = true;
        ctx.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
    }

    fn on_pilot_gone<E: RuntimeEventSink>(
        &mut self,
        pid: PilotId,
        state: PilotState,
        time: SimTime,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        self.profiler.pilot_mut(pid).finished = Some(time);
        let event = match state {
            PilotState::Done => "pilot_done",
            PilotState::Canceled => "pilot_cancelled",
            _ => "pilot_failed",
        };
        self.telemetry
            .record(time, "pilot", event, Subject::Pilot(pid.0));
        self.set_pilot_state(pid, state, time, out);
        // Units in flight on this pilot fail (they lose their cores).
        let victims: Vec<UnitId> = self
            .units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.pilot == Some(pid) && !u.state.is_terminal())
            .map(|(i, _)| UnitId(i as u64))
            .collect();
        for id in victims {
            let unit = &mut self.units[id.0 as usize];
            if unit.state.can_transition_to(UnitState::Failed) {
                unit.state = UnitState::Failed;
                unit.holding = 0;
                if let Some(ev) = unit.exec_event.take() {
                    ctx.cancel(ev);
                }
                self.profiler.unit_mut(id).done = Some(time);
                self.note_unit_terminal(id, "unit_failed", time);
                out.push(RuntimeNotification::Unit {
                    id,
                    state: UnitState::Failed,
                    time,
                    detail: Some(format!("{pid} terminated ({state:?})")),
                });
            }
        }
        // Remaining waiting units may still run on other pilots, and the
        // loss of this pilot may doom waiting units that only it could fit.
        self.sched_dirty = true;
        ctx.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
    }

    fn set_pilot_state(
        &mut self,
        id: PilotId,
        state: PilotState,
        time: SimTime,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let p = self.pilots.get_mut(id.0 as usize).expect("pilot exists");
        if p.state == state || !p.state.can_transition_to(state) {
            return;
        }
        p.state = state;
        self.pilots_dirty = true;
        out.push(RuntimeNotification::Pilot { id, state, time });
    }

    /// Marks a waiting-list slot as a tombstone, checking it belongs to
    /// the given unit.
    fn tombstone_waiting_slot(&mut self, slot: usize, id: UnitId) {
        debug_assert_eq!(self.waiting[slot].id, id);
        self.waiting[slot].cores = UnitView::TOMBSTONE_CORES;
        self.waiting_dead += 1;
        self.waiting_live -= 1;
    }

    /// Advances the waiting head past leading tombstones and rebuilds the
    /// list once dead entries outnumber live ones. Amortized O(1) per
    /// placement: every tombstone is skipped or dropped exactly once.
    fn compact_waiting(&mut self) {
        while self.waiting_head < self.waiting.len()
            && self.waiting[self.waiting_head].is_tombstone()
        {
            self.waiting_head += 1;
            self.waiting_dead -= 1;
        }
        if self.waiting_head == self.waiting.len() {
            debug_assert_eq!(self.waiting_live, 0);
            debug_assert_eq!(self.waiting_dead, 0);
            self.waiting.clear();
            self.waiting_head = 0;
            return;
        }
        if self.waiting_dead > self.waiting_live {
            let mut compacted = Vec::with_capacity(self.waiting_live);
            for view in &self.waiting[self.waiting_head..] {
                if !view.is_tombstone() {
                    compacted.push(*view);
                }
            }
            debug_assert_eq!(compacted.len(), self.waiting_live);
            for (slot, view) in compacted.iter().enumerate() {
                self.units[view.id.0 as usize].waiting_slot = Some(slot as u32);
            }
            self.waiting = compacted;
            self.waiting_head = 0;
            self.waiting_dead = 0;
        }
    }

    /// Rebuilds the cached scheduler-facing pilot views (index == pilot
    /// id) and the max non-terminal pilot size. O(pilots), and pilots are
    /// few; the point is not doing it per pass when nothing changed.
    fn rebuild_pilot_cache(&mut self) {
        self.pilots_dirty = false;
        self.pilot_views.clear();
        self.pilot_views
            .extend(self.pilots.iter().enumerate().map(|(i, p)| PilotView {
                id: PilotId(i as u64),
                active: p.state == PilotState::Active,
                free_cores: p.free_cores,
                total_cores: p.description.cores,
            }));
        self.max_pilot_cores = self
            .pilots
            .iter()
            .filter(|p| !p.state.is_terminal())
            .map(|p| p.description.cores)
            .max()
            .unwrap_or(0);
    }

    fn schedule_pass<E: RuntimeEventSink>(
        &mut self,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        // Incremental early-out: nothing is waiting, or neither the
        // waiting set nor capacity changed since the last pass — a
        // work-conserving scheduler would place nothing (see the
        // `UnitScheduler` contract), so skip the pass entirely. No-op
        // passes draw no randomness and record nothing, so skipping them
        // is invisible in traces.
        if self.waiting_live == 0 || !self.sched_dirty {
            return;
        }
        self.sched_dirty = false;
        if self.pilots_dirty {
            self.rebuild_pilot_cache();
        }
        // Fail units that can never fit any non-terminal pilot. Gated on
        // a monotone upper bound of waiting core demands, so the scan
        // runs only when a doomed unit may actually exist instead of
        // partitioning the whole list every pass.
        if self.max_waiting_cores > self.max_pilot_cores {
            let max_pilot_cores = self.max_pilot_cores;
            let mut new_max = 0usize;
            for slot in self.waiting_head..self.waiting.len() {
                let view = self.waiting[slot];
                if view.is_tombstone() {
                    continue;
                }
                if view.cores <= max_pilot_cores {
                    new_max = new_max.max(view.cores);
                    continue;
                }
                self.tombstone_waiting_slot(slot, view.id);
                let unit = &mut self.units[view.id.0 as usize];
                unit.waiting_slot = None;
                unit.state = UnitState::Failed;
                self.profiler.unit_mut(view.id).done = Some(ctx.now());
                self.note_unit_terminal(view.id, "unit_failed", ctx.now());
                out.push(RuntimeNotification::Unit {
                    id: view.id,
                    state: UnitState::Failed,
                    time: ctx.now(),
                    detail: Some("no pilot large enough for this unit".into()),
                });
            }
            self.max_waiting_cores = new_max;
            if self.waiting_live == 0 {
                self.compact_waiting();
                return;
            }
        }
        self.compact_waiting();

        let placements = self
            .scheduler
            .assign(&self.waiting[self.waiting_head..], &self.pilot_views);
        for placement in placements {
            let uidx = placement.unit.0 as usize;
            let pidx = placement.pilot.0 as usize;
            let cores = self.units[uidx].description.cores;
            let pilot = &mut self.pilots[pidx];
            assert!(
                pilot.free_cores >= cores,
                "unit scheduler oversubscribed {}",
                placement.pilot
            );
            pilot.free_cores -= cores;
            let free_now = pilot.free_cores;
            // Keep the cached view exact; no rebuild needed for placements.
            self.pilot_views[pidx].free_cores = free_now;
            let unit = &mut self.units[uidx];
            unit.pilot = Some(placement.pilot);
            unit.holding = cores;
            unit.state = UnitState::StagingInput;
            let slot = unit
                .waiting_slot
                .take()
                .expect("placed unit was on the waiting list");
            self.tombstone_waiting_slot(slot as usize, placement.unit);
            self.telemetry.record(
                ctx.now(),
                "pilot",
                "unit_scheduled",
                Subject::Unit(placement.unit.0),
            );
            self.profiler.unit_mut(placement.unit).scheduled = Some(ctx.now());
            out.push(RuntimeNotification::Unit {
                id: placement.unit,
                state: UnitState::StagingInput,
                time: ctx.now(),
                detail: None,
            });
            // Scheduling bookkeeping cost + staged input bytes.
            let sched_cost = self
                .config
                .overheads
                .scheduling_per_unit
                .sample(&mut self.rng);
            let bytes = self.units[uidx].description.input_bytes();
            let stage = self.service.cluster_mut().transfer_duration(bytes);
            let delay = SimDuration::from_secs_f64(sched_cost) + stage;
            ctx.schedule_in(delay, RuntimeEvent::StageInDone(placement.unit));
        }
    }

    fn on_stagein_done<E: RuntimeEventSink>(&mut self, id: UnitId, ctx: &mut Context<'_, E>) {
        let Some(unit) = self.units.get(id.0 as usize) else {
            return;
        };
        if unit.state != UnitState::StagingInput {
            return;
        }
        self.profiler.unit_mut(id).stagein_done = Some(ctx.now());
        let dispatch = self.config.overheads.agent_dispatch.sample(&mut self.rng);
        let launch = self.service.cluster_mut().sample_task_launch();
        ctx.schedule_in(
            SimDuration::from_secs_f64(dispatch) + launch,
            RuntimeEvent::LaunchDone(id),
        );
    }

    fn on_launch_done<E: RuntimeEventSink>(
        &mut self,
        id: UnitId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(unit) = self.units.get_mut(id.0 as usize) else {
            return;
        };
        if unit.state != UnitState::StagingInput {
            return;
        }
        unit.state = UnitState::Executing;
        self.telemetry
            .record(ctx.now(), "pilot", "unit_exec_start", Subject::Unit(id.0));
        let duration = match &unit.description.work {
            UnitWork::Modeled(d) => *d,
            UnitWork::Real(_) => SimDuration::ZERO, // real work has no place in virtual time
        };
        // Straggler injection: only touch the duration when a slowdown was
        // actually drawn, so fault-free runs avoid the f64 roundtrip and
        // stay bit-identical to runs without an injector.
        let factor = self.service.cluster_mut().fault_straggler_factor();
        let duration = if factor != 1.0 {
            SimDuration::from_secs_f64(duration.as_secs_f64() * factor)
        } else {
            duration
        };
        self.profiler.unit_mut(id).exec_start = Some(ctx.now());
        out.push(RuntimeNotification::Unit {
            id,
            state: UnitState::Executing,
            time: ctx.now(),
            detail: None,
        });
        let ev = ctx.schedule_in(duration, RuntimeEvent::ExecDone(id));
        self.units[id.0 as usize].exec_event = Some(ev);
    }

    fn on_exec_done<E: RuntimeEventSink>(
        &mut self,
        id: UnitId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(unit) = self.units.get_mut(id.0 as usize) else {
            return;
        };
        if unit.state != UnitState::Executing {
            return;
        }
        self.telemetry
            .record(ctx.now(), "pilot", "unit_exec_stop", Subject::Unit(id.0));
        self.profiler.unit_mut(id).exec_stop = Some(ctx.now());
        unit.exec_event = None;
        // Release cores regardless of outcome.
        let released = unit.holding;
        unit.holding = 0;
        let pilot = unit.pilot;
        // Evaluate both failure sources unconditionally: skipping a draw
        // based on the other's outcome would shift the RNG streams and
        // break replay determinism.
        let legacy_failed =
            self.config.unit_failure_rate > 0.0 && self.rng.chance(self.config.unit_failure_rate);
        let injected_failed = self.service.cluster_mut().fault_unit_fails();
        if legacy_failed || injected_failed {
            unit.state = UnitState::Failed;
            self.profiler.unit_mut(id).done = Some(ctx.now());
            self.note_unit_terminal(id, "unit_failed", ctx.now());
            out.push(RuntimeNotification::Unit {
                id,
                state: UnitState::Failed,
                time: ctx.now(),
                detail: Some("injected execution failure".into()),
            });
        } else if unit.description.output_bytes() > 0 {
            unit.state = UnitState::StagingOutput;
            out.push(RuntimeNotification::Unit {
                id,
                state: UnitState::StagingOutput,
                time: ctx.now(),
                detail: None,
            });
            let bytes = unit.description.output_bytes();
            let stage = self.service.cluster_mut().transfer_duration(bytes);
            ctx.schedule_in(stage, RuntimeEvent::StageOutDone(id));
        } else {
            unit.state = UnitState::Done;
            self.profiler.unit_mut(id).done = Some(ctx.now());
            self.note_unit_terminal(id, "unit_done", ctx.now());
            out.push(RuntimeNotification::Unit {
                id,
                state: UnitState::Done,
                time: ctx.now(),
                detail: None,
            });
        }
        if let (Some(pid), true) = (pilot, released > 0) {
            if let Some(p) = self.pilots.get_mut(pid.0 as usize) {
                p.free_cores += released;
                self.pilots_dirty = true;
            }
            self.sched_dirty = true;
            ctx.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        }
    }

    fn on_stageout_done<E: RuntimeEventSink>(
        &mut self,
        id: UnitId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<RuntimeNotification>,
    ) {
        let Some(unit) = self.units.get_mut(id.0 as usize) else {
            return;
        };
        if unit.state != UnitState::StagingOutput {
            return;
        }
        unit.state = UnitState::Done;
        self.profiler.unit_mut(id).done = Some(ctx.now());
        self.note_unit_terminal(id, "unit_done", ctx.now());
        out.push(RuntimeNotification::Unit {
            id,
            state: UnitState::Done,
            time: ctx.now(),
            detail: None,
        });
    }

    /// Bookkeeping shared by every unit-terminal transition: one trace
    /// record for the outcome and a `pilot.live_units` gauge sample.
    fn note_unit_terminal(&mut self, id: UnitId, event: &'static str, time: SimTime) {
        self.live = self.live.saturating_sub(1);
        self.telemetry
            .record(time, "pilot", event, Subject::Unit(id.0));
        self.telemetry
            .gauge("pilot.live_units", time, self.live as f64);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use entk_sim::Engine;
    use std::collections::HashMap;

    /// Top-level event enum for tests.
    #[derive(Debug)]
    pub(crate) enum Ev {
        Rt(RuntimeEvent),
        Cl(ClusterEvent),
    }
    impl From<RuntimeEvent> for Ev {
        fn from(e: RuntimeEvent) -> Ev {
            Ev::Rt(e)
        }
    }
    impl From<ClusterEvent> for Ev {
        fn from(e: ClusterEvent) -> Ev {
            Ev::Cl(e)
        }
    }

    pub(crate) fn quiet_spec(nodes: usize, cpn: usize) -> PlatformSpec {
        let mut s = PlatformSpec::local(nodes, cpn);
        s.job_startup = entk_sim::Dist::Constant(1.0);
        s.task_launch = entk_sim::Dist::Constant(0.01);
        s
    }

    pub(crate) fn quiet_config() -> SimRuntimeConfig {
        SimRuntimeConfig {
            overheads: RuntimeOverheads::zero(),
            unit_failure_rate: 0.0,
            seed: 7,
            batch_policy: BatchPolicy::Fifo,
            scheduler: None,
            telemetry: true,
        }
    }

    /// Boots a pilot, submits `units`, runs to completion; returns
    /// notifications and the runtime.
    pub(crate) fn run_session(
        spec: PlatformSpec,
        config: SimRuntimeConfig,
        pilot_cores: usize,
        units: Vec<UnitDescription>,
    ) -> (Vec<RuntimeNotification>, SimRuntime) {
        let mut rt = SimRuntime::new(spec, config);
        let mut engine: Engine<Ev> = Engine::new();
        let mut log = Vec::new();
        let mut booted = false;
        engine.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                rt.submit_pilot(
                    PilotDescription::new("local", pilot_cores, SimDuration::from_secs(100_000)),
                    ctx,
                    &mut out,
                )
                .unwrap();
                rt.submit_units(units.clone(), ctx, &mut out).unwrap();
            }
            match ev {
                Ev::Rt(re) => rt.handle(re, ctx, &mut out),
                Ev::Cl(ce) => rt.handle_cluster(ce, ctx, &mut out),
            }
            // Tear the pilot down once all units are terminal.
            if rt.live_units() == 0 && rt.pilot_state(PilotId(0)) == Some(PilotState::Active) {
                rt.finish_pilot(PilotId(0), ctx, &mut out);
            }
            log.extend(out);
        });
        (log, rt)
    }

    fn unit_terminal_states(log: &[RuntimeNotification]) -> HashMap<UnitId, UnitState> {
        let mut m = HashMap::new();
        for n in log {
            if let RuntimeNotification::Unit { id, state, .. } = n {
                if state.is_terminal() {
                    m.insert(*id, *state);
                }
            }
        }
        m
    }

    #[test]
    fn all_units_complete_exactly_once() {
        let units: Vec<_> = (0..10)
            .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(5)))
            .collect();
        let (log, rt) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let terminals = unit_terminal_states(&log);
        assert_eq!(terminals.len(), 10);
        assert!(terminals.values().all(|&s| s == UnitState::Done));
        // Exactly one Done notification per unit.
        let done_count = log
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    RuntimeNotification::Unit {
                        state: UnitState::Done,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(done_count, 10);
        assert_eq!(rt.profiler().exec_durations().count(), 10);
    }

    #[test]
    fn more_units_than_cores_run_in_waves() {
        // 8 units of 5 s on 4 cores => exec span ~ 2 waves.
        let units: Vec<_> = (0..8)
            .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(5)))
            .collect();
        let (_, rt) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let span = rt.profiler().exec_span().unwrap().as_secs_f64();
        assert!(span >= 10.0, "two waves of 5 s, got {span}");
        assert!(span < 12.0, "launch overheads only, got {span}");
    }

    #[test]
    fn mpi_units_hold_multiple_cores() {
        // Two 4-core MPI units on a 4-core pilot must serialize.
        let units: Vec<_> = (0..2)
            .map(|i| {
                UnitDescription::modeled(format!("mpi{i}"), SimDuration::from_secs(5))
                    .with_cores(4)
                    .with_mpi(true)
            })
            .collect();
        let (_, rt) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let span = rt.profiler().exec_span().unwrap().as_secs_f64();
        assert!(span >= 10.0, "serialized MPI units, got {span}");
    }

    #[test]
    fn oversized_unit_fails_cleanly() {
        let units = vec![
            UnitDescription::modeled("huge", SimDuration::from_secs(1))
                .with_cores(64)
                .with_mpi(true),
            UnitDescription::modeled("ok", SimDuration::from_secs(1)),
        ];
        let (log, _) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let terminals = unit_terminal_states(&log);
        assert_eq!(terminals[&UnitId(0)], UnitState::Failed);
        assert_eq!(terminals[&UnitId(1)], UnitState::Done);
    }

    #[test]
    fn staging_adds_time_and_states() {
        let units = vec![UnitDescription::modeled("st", SimDuration::from_secs(1))
            .with_input("in.dat", 50_000_000) // 10 ms at 5 GB/s
            .with_output("out.dat", 50_000_000)];
        let (log, _) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let states: Vec<UnitState> = log
            .iter()
            .filter_map(|n| match n {
                RuntimeNotification::Unit { id, state, .. } if *id == UnitId(0) => Some(*state),
                _ => None,
            })
            .collect();
        assert_eq!(
            states,
            vec![
                UnitState::New,
                UnitState::Scheduling,
                UnitState::StagingInput,
                UnitState::Executing,
                UnitState::StagingOutput,
                UnitState::Done
            ]
        );
    }

    #[test]
    fn failure_injection_fails_some_units() {
        let mut cfg = quiet_config();
        cfg.unit_failure_rate = 0.5;
        let units: Vec<_> = (0..40)
            .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(1)))
            .collect();
        let (log, _) = run_session(quiet_spec(1, 8), cfg, 8, units);
        let terminals = unit_terminal_states(&log);
        let failed = terminals
            .values()
            .filter(|&&s| s == UnitState::Failed)
            .count();
        let done = terminals
            .values()
            .filter(|&&s| s == UnitState::Done)
            .count();
        assert_eq!(failed + done, 40);
        assert!(failed > 5, "expected some failures, got {failed}");
        assert!(done > 5, "expected some successes, got {done}");
    }

    #[test]
    fn cancel_pilot_fails_inflight_units() {
        let mut rt = SimRuntime::new(quiet_spec(1, 4), quiet_config());
        let mut engine: Engine<Ev> = Engine::new();
        let mut log = Vec::new();
        let mut booted = false;
        let mut cancelled = false;
        engine.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                rt.submit_pilot(
                    PilotDescription::new("local", 4, SimDuration::from_secs(100_000)),
                    ctx,
                    &mut out,
                )
                .unwrap();
                rt.submit_units(
                    vec![UnitDescription::modeled(
                        "long",
                        SimDuration::from_secs(1000),
                    )],
                    ctx,
                    &mut out,
                )
                .unwrap();
            }
            match ev {
                Ev::Rt(re) => rt.handle(re, ctx, &mut out),
                Ev::Cl(ce) => rt.handle_cluster(ce, ctx, &mut out),
            }
            // Cancel the pilot as soon as the unit starts executing.
            if !cancelled
                && out.iter().any(|n| {
                    matches!(
                        n,
                        RuntimeNotification::Unit {
                            state: UnitState::Executing,
                            ..
                        }
                    )
                })
            {
                cancelled = true;
                rt.cancel_pilot(PilotId(0), ctx, &mut out);
            }
            log.extend(out);
        });
        assert!(cancelled);
        let terminals = unit_terminal_states(&log);
        assert_eq!(terminals[&UnitId(0)], UnitState::Failed);
        assert_eq!(rt.pilot_state(PilotId(0)), Some(PilotState::Canceled));
    }

    #[test]
    fn walltime_expiry_fails_pilot_and_units() {
        let units = vec![UnitDescription::modeled(
            "too-long",
            SimDuration::from_secs(500),
        )];
        // Pilot walltime is 10 s; the unit needs 500 s.
        let mut rt = SimRuntime::new(quiet_spec(1, 4), quiet_config());
        let mut engine: Engine<Ev> = Engine::new();
        let mut log = Vec::new();
        let mut booted = false;
        engine.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                rt.submit_pilot(
                    PilotDescription::new("local", 4, SimDuration::from_secs(10)),
                    ctx,
                    &mut out,
                )
                .unwrap();
                rt.submit_units(units.clone(), ctx, &mut out).unwrap();
            }
            match ev {
                Ev::Rt(re) => rt.handle(re, ctx, &mut out),
                Ev::Cl(ce) => rt.handle_cluster(ce, ctx, &mut out),
            }
            log.extend(out);
        });
        assert_eq!(rt.pilot_state(PilotId(0)), Some(PilotState::Failed));
        let terminals = unit_terminal_states(&log);
        assert_eq!(terminals[&UnitId(0)], UnitState::Failed);
    }

    #[test]
    fn cancel_waiting_unit_before_any_pilot() {
        let mut rt = SimRuntime::new(quiet_spec(1, 4), quiet_config());
        let mut engine: Engine<Ev> = Engine::new();
        let mut booted = false;
        let mut log = Vec::new();
        engine.schedule_in(SimDuration::ZERO, RuntimeEvent::SchedulePass);
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                let ids = rt
                    .submit_units(
                        vec![UnitDescription::modeled("w", SimDuration::from_secs(1))],
                        ctx,
                        &mut out,
                    )
                    .unwrap();
                rt.cancel_unit(ids[0], ctx, &mut out);
            }
            match ev {
                Ev::Rt(re) => rt.handle(re, ctx, &mut out),
                Ev::Cl(ce) => rt.handle_cluster(ce, ctx, &mut out),
            }
            log.extend(out);
        });
        assert_eq!(rt.unit_state(UnitId(0)), Some(UnitState::Canceled));
    }

    #[test]
    fn per_unit_overheads_scale_with_task_count() {
        // The unit-submission delay (fixed + per-unit * n) gates when units
        // become schedulable: with constant overheads the gap from t=0 to the
        // first Scheduling notification must be exactly fixed + per * n.
        let mk_units = |n: usize| {
            (0..n)
                .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(1)))
                .collect::<Vec<_>>()
        };
        let mut cfg = quiet_config();
        cfg.overheads.unit_submit_per_unit = entk_sim::Dist::Constant(0.01);
        cfg.overheads.unit_submit_fixed = entk_sim::Dist::Constant(0.1);
        let first_scheduling = |log: &[RuntimeNotification]| {
            log.iter()
                .find_map(|n| match n {
                    RuntimeNotification::Unit {
                        state: UnitState::Scheduling,
                        time,
                        ..
                    } => Some(time.as_secs_f64()),
                    _ => None,
                })
                .expect("units entered scheduling")
        };
        let (log_small, _) = run_session(quiet_spec(8, 24), cfg.clone(), 64, mk_units(16));
        let (log_large, _) = run_session(quiet_spec(8, 24), cfg, 64, mk_units(64));
        let small = first_scheduling(&log_small);
        let large = first_scheduling(&log_large);
        assert!(
            (small - (0.1 + 0.01 * 16.0)).abs() < 1e-6,
            "small gap {small}"
        );
        assert!(
            (large - (0.1 + 0.01 * 64.0)).abs() < 1e-6,
            "large gap {large}"
        );
    }
}

#[cfg(test)]
mod tracer_tests {
    use super::tests::*;
    use super::*;
    use entk_sim::SimDuration;

    #[test]
    fn tracer_records_session_events_in_causal_order() {
        let units: Vec<_> = (0..3)
            .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(5)))
            .collect();
        let (_, rt) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let tracer = rt.tracer();
        assert_eq!(tracer.filter("pilot", "pilot_submitted").count(), 1);
        assert_eq!(tracer.filter("pilot", "pilot_active").count(), 1);
        assert_eq!(tracer.filter("pilot", "unit_scheduled").count(), 3);
        assert_eq!(tracer.filter("pilot", "unit_exec_start").count(), 3);
        assert_eq!(tracer.filter("pilot", "unit_exec_stop").count(), 3);
        // Causality per unit: scheduled <= exec_start <= exec_stop.
        for u in 0..3u64 {
            let subject = Subject::Unit(u);
            let sched = tracer.time_of("pilot", "unit_scheduled", subject).unwrap();
            let start = tracer.time_of("pilot", "unit_exec_start", subject).unwrap();
            let stop = tracer.time_of("pilot", "unit_exec_stop", subject).unwrap();
            assert!(sched <= start && start <= stop);
        }
    }

    #[test]
    fn trace_spans_cluster_and_pilot_layers() {
        let units: Vec<_> = (0..2)
            .map(|i| UnitDescription::modeled(format!("t{i}"), SimDuration::from_secs(5)))
            .collect();
        let (_, rt) = run_session(quiet_spec(1, 4), quiet_config(), 4, units);
        let tracer = rt.tracer();
        // The pilot's container job is traced by the cluster layer through
        // the same shared pipeline.
        assert_eq!(tracer.filter("cluster", "job_queued").count(), 1);
        assert_eq!(tracer.filter("cluster", "job_started").count(), 1);
        assert_eq!(tracer.filter("cluster", "job_running").count(), 1);
        assert_eq!(tracer.filter("cluster", "job_completed").count(), 1);
        // Terminal unit outcomes are traced.
        assert_eq!(tracer.filter("pilot", "unit_done").count(), 2);
        // Live-unit gauge drains back to zero.
        let snap = rt.telemetry().snapshot();
        let live = snap.metrics.series("pilot.live_units").unwrap();
        assert_eq!(live.points().last().unwrap().1, 0.0);
    }
}
