//! Per-entity timestamp profiles, the raw material of the paper's
//! overhead decomposition (Fig. 3).

use crate::states::{PilotId, UnitId};
use entk_sim::{SimDuration, SimTime, Summary};
use serde::{Deserialize, Serialize};

/// Timestamps collected for one compute unit.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UnitProfile {
    /// Accepted by the unit manager.
    pub submitted: Option<SimTime>,
    /// Assigned to a pilot.
    pub scheduled: Option<SimTime>,
    /// Input staging finished.
    pub stagein_done: Option<SimTime>,
    /// Execution began on pilot cores.
    pub exec_start: Option<SimTime>,
    /// Execution finished.
    pub exec_stop: Option<SimTime>,
    /// Reached a terminal state.
    pub done: Option<SimTime>,
}

impl UnitProfile {
    /// Pure execution time, if the unit executed.
    pub fn exec_duration(&self) -> Option<SimDuration> {
        Some(self.exec_stop?.saturating_since(self.exec_start?))
    }

    /// Time from submission to execution start (runtime-side latency).
    pub fn dispatch_latency(&self) -> Option<SimDuration> {
        Some(self.exec_start?.saturating_since(self.submitted?))
    }
}

/// Timestamps collected for one pilot.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PilotProfile {
    /// Described/accepted by the pilot manager.
    pub submitted: Option<SimTime>,
    /// Container job handed to SAGA.
    pub launched: Option<SimTime>,
    /// Agent became active.
    pub active: Option<SimTime>,
    /// Reached a terminal state.
    pub finished: Option<SimTime>,
}

/// Collects profiles for all pilots and units of a session.
///
/// Ids are dense (assigned sequentially by the runtime), so profiles live
/// in slab vectors indexed by the raw id — no hashing on the per-unit hot
/// path, and iteration is in id order, which keeps every aggregate below
/// deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profiler {
    units: Vec<Option<UnitProfile>>,
    pilots: Vec<Option<PilotProfile>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable profile for a unit (created on first touch).
    pub fn unit_mut(&mut self, id: UnitId) -> &mut UnitProfile {
        let idx = id.0 as usize;
        if idx >= self.units.len() {
            self.units.resize(idx + 1, None);
        }
        self.units[idx].get_or_insert_with(UnitProfile::default)
    }

    /// Mutable profile for a pilot (created on first touch).
    pub fn pilot_mut(&mut self, id: PilotId) -> &mut PilotProfile {
        let idx = id.0 as usize;
        if idx >= self.pilots.len() {
            self.pilots.resize(idx + 1, None);
        }
        self.pilots[idx].get_or_insert_with(PilotProfile::default)
    }

    /// Read access to a unit profile.
    pub fn unit(&self, id: UnitId) -> Option<&UnitProfile> {
        self.units.get(id.0 as usize)?.as_ref()
    }

    /// Read access to a pilot profile.
    pub fn pilot(&self, id: PilotId) -> Option<&PilotProfile> {
        self.pilots.get(id.0 as usize)?.as_ref()
    }

    /// Number of profiled units.
    pub fn unit_count(&self) -> usize {
        self.units.iter().flatten().count()
    }

    /// Iterator over present unit profiles in id order.
    fn unit_profiles(&self) -> impl Iterator<Item = &UnitProfile> {
        self.units.iter().flatten()
    }

    /// Span from the first execution start to the last execution stop — the
    /// application-execution component of TTC.
    pub fn exec_span(&self) -> Option<SimDuration> {
        let start = self.unit_profiles().filter_map(|u| u.exec_start).min()?;
        let stop = self.unit_profiles().filter_map(|u| u.exec_stop).max()?;
        Some(stop.saturating_since(start))
    }

    /// Summary of per-unit execution durations in seconds.
    pub fn exec_durations(&self) -> Summary {
        let mut s = Summary::new();
        for u in self.unit_profiles() {
            if let Some(d) = u.exec_duration() {
                s.add_duration(d);
            }
        }
        s
    }

    /// Summary of per-unit dispatch latencies in seconds.
    pub fn dispatch_latencies(&self) -> Summary {
        let mut s = Summary::new();
        for u in self.unit_profiles() {
            if let Some(d) = u.dispatch_latency() {
                s.add_duration(d);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_profile_durations() {
        let mut p = Profiler::new();
        let u = UnitId(0);
        p.unit_mut(u).submitted = Some(SimTime::from_secs(1));
        p.unit_mut(u).exec_start = Some(SimTime::from_secs(4));
        p.unit_mut(u).exec_stop = Some(SimTime::from_secs(10));
        let prof = p.unit(u).unwrap();
        assert_eq!(prof.exec_duration(), Some(SimDuration::from_secs(6)));
        assert_eq!(prof.dispatch_latency(), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn exec_span_covers_all_units() {
        let mut p = Profiler::new();
        for (i, (start, stop)) in [(2u64, 5u64), (3, 9), (1, 4)].iter().enumerate() {
            let u = p.unit_mut(UnitId(i as u64));
            u.exec_start = Some(SimTime::from_secs(*start));
            u.exec_stop = Some(SimTime::from_secs(*stop));
        }
        assert_eq!(p.exec_span(), Some(SimDuration::from_secs(8)));
    }

    #[test]
    fn missing_timestamps_yield_none() {
        let mut p = Profiler::new();
        p.unit_mut(UnitId(0)).submitted = Some(SimTime::ZERO);
        assert!(p.unit(UnitId(0)).unwrap().exec_duration().is_none());
        assert!(p.exec_span().is_none());
        assert_eq!(p.exec_durations().count(), 0);
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    #[test]
    fn dispatch_and_exec_summaries_aggregate_all_units() {
        let mut p = Profiler::new();
        for i in 0..4u64 {
            let u = p.unit_mut(UnitId(i));
            u.submitted = Some(SimTime::from_secs(0));
            u.exec_start = Some(SimTime::from_secs(1 + i));
            u.exec_stop = Some(SimTime::from_secs(3 + i));
        }
        assert_eq!(p.unit_count(), 4);
        assert_eq!(p.exec_durations().count(), 4);
        assert_eq!(p.exec_durations().mean(), 2.0);
        assert_eq!(p.dispatch_latencies().mean(), 2.5); // (1+2+3+4)/4
    }

    #[test]
    fn pilot_profile_records_lifecycle() {
        let mut p = Profiler::new();
        let id = PilotId(0);
        p.pilot_mut(id).submitted = Some(SimTime::ZERO);
        p.pilot_mut(id).launched = Some(SimTime::from_secs(2));
        p.pilot_mut(id).active = Some(SimTime::from_secs(50));
        let prof = p.pilot(id).unwrap();
        assert_eq!(
            prof.active
                .unwrap()
                .saturating_since(prof.launched.unwrap()),
            entk_sim::SimDuration::from_secs(48)
        );
    }
}
