//! Unit-manager scheduling policies: placing compute units onto pilots.
//!
//! This is application-level scheduling — the defining capability of
//! pilot-job systems (paper §III-C2). Policies here are ablation points:
//! the paper's experiments use a single pilot, where all policies coincide,
//! but multi-pilot execution strategies (paper §V, Ref.\[23\]) differ.

use crate::states::{PilotId, UnitId};

/// Scheduler-facing view of a waiting unit.
#[derive(Debug, Clone, Copy)]
pub struct UnitView {
    /// The unit.
    pub id: UnitId,
    /// Cores it needs.
    pub cores: usize,
}

impl UnitView {
    /// Core count marking a tombstoned (already placed, cancelled, or
    /// failed) entry in the runtime's persistent waiting list. No pilot
    /// can ever satisfy it, so a policy that ignores the marker still
    /// cannot place a tombstone — checking it explicitly just skips the
    /// wasted capacity probe.
    pub const TOMBSTONE_CORES: usize = usize::MAX;

    /// Whether this entry is a tombstone and must not be placed.
    pub fn is_tombstone(&self) -> bool {
        self.cores == Self::TOMBSTONE_CORES
    }
}

/// Scheduler-facing view of a pilot.
#[derive(Debug, Clone, Copy)]
pub struct PilotView {
    /// The pilot.
    pub id: PilotId,
    /// Whether its agent is active (can run units now).
    pub active: bool,
    /// Free cores on the pilot.
    pub free_cores: usize,
    /// Total cores on the pilot.
    pub total_cores: usize,
}

/// A unit-to-pilot placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The unit to place.
    pub unit: UnitId,
    /// The pilot it goes to.
    pub pilot: PilotId,
}

/// A unit-manager scheduling policy.
///
/// `assign` must not oversubscribe any pilot and must only use active
/// pilots' free cores; units it leaves unplaced wait for the next pass.
///
/// Contract details the incremental runtime relies on:
///
/// - `waiting` may contain [`UnitView::is_tombstone`] entries; they must
///   never be placed (their core demand is `usize::MAX`, so an oblivious
///   policy cannot place them anyway).
/// - Placement must be *work-conserving*: if `assign` is called again with
///   the same pilots minus the capacity it just consumed and the same
///   waiting units minus the ones it just placed, it must place nothing.
///   All greedy policies have this property; it lets the runtime skip
///   scheduling passes when neither capacity nor the waiting set changed.
pub trait UnitScheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses placements for waiting units given current pilot capacity.
    fn assign(&mut self, waiting: &[UnitView], pilots: &[PilotView]) -> Vec<Placement>;
}

/// First-fit ("continuous") scheduling: each unit goes to the first active
/// pilot with enough free cores. RADICAL-Pilot's default.
#[derive(Debug, Default)]
pub struct FirstFitScheduler;

impl UnitScheduler for FirstFitScheduler {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn assign(&mut self, waiting: &[UnitView], pilots: &[PilotView]) -> Vec<Placement> {
        let mut free: Vec<(PilotId, usize)> = pilots
            .iter()
            .filter(|p| p.active)
            .map(|p| (p.id, p.free_cores))
            .collect();
        // Total free cores across active pilots: once exhausted no further
        // unit (every unit needs >= 1 core) can place, so stop scanning.
        let mut avail: usize = free.iter().map(|(_, f)| *f).sum();
        let mut placements = Vec::new();
        if avail == 0 {
            return placements;
        }
        for unit in waiting {
            if unit.is_tombstone() {
                continue;
            }
            if let Some(slot) = free.iter_mut().find(|(_, f)| *f >= unit.cores) {
                slot.1 -= unit.cores;
                avail -= unit.cores;
                placements.push(Placement {
                    unit: unit.id,
                    pilot: slot.0,
                });
                if avail == 0 {
                    break;
                }
            }
        }
        placements
    }
}

/// Round-robin scheduling: spreads units across active pilots, balancing
/// load for multi-pilot execution strategies.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl UnitScheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&mut self, waiting: &[UnitView], pilots: &[PilotView]) -> Vec<Placement> {
        let mut free: Vec<(PilotId, usize)> = pilots
            .iter()
            .filter(|p| p.active)
            .map(|p| (p.id, p.free_cores))
            .collect();
        if free.is_empty() {
            return Vec::new();
        }
        let mut avail: usize = free.iter().map(|(_, f)| *f).sum();
        let mut placements = Vec::new();
        if avail == 0 {
            return placements;
        }
        for unit in waiting {
            if unit.is_tombstone() {
                continue;
            }
            let n = free.len();
            // Probe pilots starting from the rotating cursor.
            let mut placed = false;
            for probe in 0..n {
                let i = (self.cursor + probe) % n;
                if free[i].1 >= unit.cores {
                    free[i].1 -= unit.cores;
                    avail -= unit.cores;
                    placements.push(Placement {
                        unit: unit.id,
                        pilot: free[i].0,
                    });
                    self.cursor = (i + 1) % n;
                    placed = true;
                    break;
                }
            }
            if placed && avail == 0 {
                // Capacity exhausted; no remaining unit can place.
                break;
            }
        }
        placements
    }
}

/// Largest-first scheduling: sorts waiting units by core count descending
/// before first-fit, reducing fragmentation for mixed MPI workloads.
#[derive(Debug, Default)]
pub struct LargestFirstScheduler;

impl UnitScheduler for LargestFirstScheduler {
    fn name(&self) -> &'static str {
        "largest-first"
    }

    fn assign(&mut self, waiting: &[UnitView], pilots: &[PilotView]) -> Vec<Placement> {
        let mut sorted: Vec<UnitView> = waiting
            .iter()
            .filter(|u| !u.is_tombstone())
            .copied()
            .collect();
        sorted.sort_by(|a, b| b.cores.cmp(&a.cores).then(a.id.cmp(&b.id)));
        FirstFitScheduler.assign(&sorted, pilots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(id: u64, cores: usize) -> UnitView {
        UnitView {
            id: UnitId(id),
            cores,
        }
    }

    fn pv(id: u64, active: bool, free: usize) -> PilotView {
        PilotView {
            id: PilotId(id),
            active,
            free_cores: free,
            total_cores: free,
        }
    }

    /// Checks the no-oversubscription contract for any policy.
    fn check_contract(policy: &mut dyn UnitScheduler, waiting: &[UnitView], pilots: &[PilotView]) {
        let placements = policy.assign(waiting, pilots);
        for p in &pilots.to_vec() {
            let used: usize = placements
                .iter()
                .filter(|pl| pl.pilot == p.id)
                .map(|pl| waiting.iter().find(|u| u.id == pl.unit).unwrap().cores)
                .sum();
            assert!(used <= p.free_cores, "{} oversubscribed", policy.name());
            if !p.active {
                assert_eq!(used, 0, "{} used inactive pilot", policy.name());
            }
        }
        let mut ids: Vec<_> = placements.iter().map(|p| p.unit).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), placements.len(), "unit placed twice");
    }

    #[test]
    fn first_fit_packs_first_pilot() {
        let placements =
            FirstFitScheduler.assign(&[uv(0, 2), uv(1, 2)], &[pv(0, true, 4), pv(1, true, 4)]);
        assert!(placements.iter().all(|p| p.pilot == PilotId(0)));
    }

    #[test]
    fn round_robin_spreads_units() {
        let mut rr = RoundRobinScheduler::default();
        let placements = rr.assign(
            &[uv(0, 1), uv(1, 1), uv(2, 1), uv(3, 1)],
            &[pv(0, true, 4), pv(1, true, 4)],
        );
        let on0 = placements.iter().filter(|p| p.pilot == PilotId(0)).count();
        let on1 = placements.iter().filter(|p| p.pilot == PilotId(1)).count();
        assert_eq!(on0, 2);
        assert_eq!(on1, 2);
    }

    #[test]
    fn inactive_pilots_receive_nothing() {
        for policy in [
            &mut FirstFitScheduler as &mut dyn UnitScheduler,
            &mut RoundRobinScheduler::default(),
            &mut LargestFirstScheduler,
        ] {
            let placements = policy.assign(&[uv(0, 1)], &[pv(0, false, 8)]);
            assert!(placements.is_empty(), "{}", policy.name());
        }
    }

    #[test]
    fn big_unit_waits_small_unit_proceeds() {
        let placements = FirstFitScheduler.assign(&[uv(0, 8), uv(1, 1)], &[pv(0, true, 4)]);
        assert_eq!(
            placements,
            vec![Placement {
                unit: UnitId(1),
                pilot: PilotId(0)
            }]
        );
    }

    #[test]
    fn largest_first_reduces_fragmentation() {
        // 6 free cores; units of 4, 3, 2: largest-first places 4 then 2;
        // plain first-fit in id order (3, 4, 2) would place 3 and 2 only.
        let waiting = [uv(0, 3), uv(1, 4), uv(2, 2)];
        let placed = LargestFirstScheduler.assign(&waiting, &[pv(0, true, 6)]);
        let total: usize = placed
            .iter()
            .map(|p| waiting.iter().find(|u| u.id == p.unit).unwrap().cores)
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn tombstones_are_never_placed() {
        let tomb = UnitView {
            id: UnitId(7),
            cores: UnitView::TOMBSTONE_CORES,
        };
        let waiting = [tomb, uv(1, 2), tomb, uv(3, 1)];
        for policy in [
            &mut FirstFitScheduler as &mut dyn UnitScheduler,
            &mut RoundRobinScheduler::default(),
            &mut LargestFirstScheduler,
        ] {
            let placements = policy.assign(&waiting, &[pv(0, true, 8)]);
            assert_eq!(placements.len(), 2, "{}", policy.name());
            assert!(
                placements.iter().all(|p| p.unit != UnitId(7)),
                "{} placed a tombstone",
                policy.name()
            );
        }
    }

    #[test]
    fn early_out_stops_at_exhausted_capacity() {
        // 3 free cores, four 1-core units: exactly the first three place.
        let waiting: Vec<_> = (0..4).map(|i| uv(i, 1)).collect();
        for policy in [
            &mut FirstFitScheduler as &mut dyn UnitScheduler,
            &mut RoundRobinScheduler::default(),
            &mut LargestFirstScheduler,
        ] {
            let placements = policy.assign(&waiting, &[pv(0, true, 3)]);
            let ids: Vec<_> = placements.iter().map(|p| p.unit.0).collect();
            assert_eq!(ids, vec![0, 1, 2], "{}", policy.name());
        }
    }

    #[test]
    fn all_policies_satisfy_contract() {
        let waiting: Vec<_> = (0..12).map(|i| uv(i, 1 + (i as usize % 5))).collect();
        let pilots = [pv(0, true, 7), pv(1, false, 100), pv(2, true, 3)];
        check_contract(&mut FirstFitScheduler, &waiting, &pilots);
        check_contract(&mut RoundRobinScheduler::default(), &waiting, &pilots);
        check_contract(&mut LargestFirstScheduler, &waiting, &pilots);
    }
}
