//! CSV workload traces: an Alibaba/Google-style schema binding arrival
//! rows to session requests, plus a synthetic generator so CI needs no
//! external data.
//!
//! Schema (header required, one session per row):
//!
//! ```csv
//! arrival_time,tenant,pattern,tasks,stages,kernel,cores
//! 0.000000,3,eop,8,2,misc.sleep,32
//! 12.504119,0,sal,16,1,md.amber,64
//! ```
//!
//! `arrival_time` is virtual seconds since stream start with microsecond
//! resolution — exactly the simulator's clock grain, so render → parse
//! round-trips losslessly ([`render_trace`] writes six decimal places and
//! [`parse_trace`] rounds to the nearest microsecond). Rows must be sorted
//! by non-decreasing `arrival_time`. All violations surface as typed
//! [`EntkError::Usage`] values naming the offending line, never panics.

use crate::arrival::{ArrivalStream, PatternKind, SessionArrival, VecStream, WorkloadGenerator};
use crate::OpenLoopProcess;
use entk_core::EntkError;
use entk_sim::{SimDuration, SimTime};
use std::io::BufRead;

/// The trace header; every trace file starts with exactly this line.
pub const TRACE_HEADER: &str = "arrival_time,tenant,pattern,tasks,stages,kernel,cores";

/// Renders arrivals as CSV text in the canonical schema. Output parses
/// back to the same rows ([`parse_trace`] is its exact inverse).
pub fn render_trace(arrivals: &[SessionArrival]) -> String {
    let mut out = String::with_capacity(32 * (arrivals.len() + 1));
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for a in arrivals {
        out.push_str(&render_row(a));
    }
    out
}

/// Renders one arrival as a canonical CSV data row (trailing newline
/// included) — the unit the service folds into its streaming prefix
/// fingerprint, byte-compatible with [`render_trace`].
pub(crate) fn render_row(a: &SessionArrival) -> String {
    format!(
        "{:.6},{},{},{},{},{},{}\n",
        a.arrival.as_secs_f64(),
        a.tenant,
        a.pattern.as_str(),
        a.tasks,
        a.stages,
        a.kernel,
        a.cores,
    )
}

/// Parses CSV text in the canonical schema into validated, time-ordered
/// arrivals. Every malformed input — missing or wrong header, wrong column
/// count, unparsable numbers, invalid UTF-8, unknown pattern or kernel
/// names, rows out of arrival order, or a trace with no data rows — is a
/// typed [`EntkError::Usage`] carrying the 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<SessionArrival>, EntkError> {
    let mut stream = CsvStream::new(std::io::Cursor::new(text.as_bytes()));
    let mut arrivals = Vec::new();
    while let Some(row) = stream.next_arrival()? {
        arrivals.push(row);
    }
    Ok(arrivals)
}

/// Parses one CSV data row (already trimmed, non-empty) into a validated
/// arrival. Shared by the streaming reader and hence [`parse_trace`].
fn parse_row(line: &str, lineno: usize) -> Result<SessionArrival, EntkError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 7 {
        return Err(EntkError::Usage(format!(
            "line {lineno}: expected 7 comma-separated fields, got {}",
            fields.len()
        )));
    }
    let arrival_secs: f64 = fields[0].parse().map_err(|_| {
        EntkError::Usage(format!("line {lineno}: bad arrival_time {:?}", fields[0]))
    })?;
    if !arrival_secs.is_finite() || arrival_secs < 0.0 {
        return Err(EntkError::Usage(format!(
            "line {lineno}: arrival_time must be a finite non-negative number"
        )));
    }
    let tenant: u64 = fields[1]
        .parse()
        .map_err(|_| EntkError::Usage(format!("line {lineno}: bad tenant {:?}", fields[1])))?;
    let pattern = PatternKind::parse(fields[2])
        .map_err(|e| EntkError::Usage(format!("line {lineno}: {e}")))?;
    let tasks: usize = fields[3]
        .parse()
        .map_err(|_| EntkError::Usage(format!("line {lineno}: bad tasks {:?}", fields[3])))?;
    let stages: usize = fields[4]
        .parse()
        .map_err(|_| EntkError::Usage(format!("line {lineno}: bad stages {:?}", fields[4])))?;
    let cores: usize = fields[6]
        .parse()
        .map_err(|_| EntkError::Usage(format!("line {lineno}: bad cores {:?}", fields[6])))?;
    let row = SessionArrival {
        arrival: SimTime::ZERO + SimDuration::from_secs_f64(arrival_secs),
        tenant,
        pattern,
        tasks,
        stages,
        kernel: fields[5].to_string(),
        cores,
    };
    row.validate()
        .map_err(|e| EntkError::Usage(format!("line {lineno}: {e}")))?;
    Ok(row)
}

/// A pull-based CSV trace reader over any buffered byte source — the
/// out-of-core ingestion path: `entk serve` wraps a `BufReader<File>` in
/// one of these and never holds more than a single line in memory.
///
/// One line buffer is reused across rows (no per-row `String`), and every
/// malformed input — including invalid UTF-8, which a text-based reader
/// would surface as an opaque io error — is a typed [`EntkError::Usage`]
/// carrying the 1-based line number. Row order is validated as rows are
/// pulled, so an out-of-order trace fails at the offending line even when
/// the consumer never materializes the prefix.
#[derive(Debug)]
pub struct CsvStream<R> {
    reader: R,
    buf: Vec<u8>,
    lineno: usize,
    header_seen: bool,
    yielded: bool,
    prev: Option<SimTime>,
}

impl<R: BufRead + Send> CsvStream<R> {
    /// Wraps a buffered byte source positioned at the start of a trace
    /// (header line first).
    pub fn new(reader: R) -> Self {
        CsvStream {
            reader,
            buf: Vec::new(),
            lineno: 0,
            header_seen: false,
            yielded: false,
            prev: None,
        }
    }
}

impl<R: BufRead + Send> ArrivalStream for CsvStream<R> {
    fn next_arrival(&mut self) -> Result<Option<SessionArrival>, EntkError> {
        loop {
            self.buf.clear();
            self.lineno += 1;
            let n = self.reader.read_until(b'\n', &mut self.buf).map_err(|e| {
                EntkError::Usage(format!("line {}: reading trace: {e}", self.lineno))
            })?;
            if n == 0 {
                if !self.header_seen {
                    return Err(EntkError::Usage("empty trace: missing header".into()));
                }
                if !self.yielded {
                    return Err(EntkError::Usage(
                        "empty trace: header but no data rows".into(),
                    ));
                }
                return Ok(None);
            }
            let line = std::str::from_utf8(&self.buf).map_err(|e| {
                EntkError::Usage(format!(
                    "line {}: trace is not valid UTF-8 ({e})",
                    self.lineno
                ))
            })?;
            let line = line.trim();
            if !self.header_seen {
                if line != TRACE_HEADER {
                    return Err(EntkError::Usage(format!(
                        "line 1: bad header {line:?} (expected {TRACE_HEADER:?})"
                    )));
                }
                self.header_seen = true;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let row = parse_row(line, self.lineno)?;
            if let Some(prev) = self.prev {
                if row.arrival < prev {
                    return Err(EntkError::Usage(format!(
                        "line {}: arrival_time {:.6} precedes the previous row's {:.6} \
                         (traces must be sorted by arrival_time)",
                        self.lineno,
                        row.arrival.as_secs_f64(),
                        prev.as_secs_f64(),
                    )));
                }
            }
            self.prev = Some(row.arrival);
            self.yielded = true;
            return Ok(Some(row));
        }
    }
}

/// A workload read from a CSV trace — either in-memory text or a
/// disk-backed file that is streamed row by row, never fully loaded.
#[derive(Debug, Clone)]
pub struct CsvTrace {
    source: CsvSource,
}

#[derive(Debug, Clone)]
enum CsvSource {
    Text(String),
    Path(String),
}

impl CsvTrace {
    /// Wraps trace text (parsed lazily, as the stream is pulled).
    pub fn new(text: impl Into<String>) -> Self {
        CsvTrace {
            source: CsvSource::Text(text.into()),
        }
    }

    /// References a trace file without reading it: rows are streamed from
    /// disk on demand, so the file may exceed memory. Unreadable paths
    /// fail here, before the first pull.
    pub fn from_path(path: &str) -> Result<Self, EntkError> {
        std::fs::File::open(path)
            .map_err(|e| EntkError::Usage(format!("reading trace {path:?}: {e}")))?;
        Ok(CsvTrace {
            source: CsvSource::Path(path.to_string()),
        })
    }
}

impl WorkloadGenerator for CsvTrace {
    fn stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        Ok(match &self.source {
            CsvSource::Text(text) => Box::new(CsvStream::new(std::io::Cursor::new(
                text.clone().into_bytes(),
            ))),
            CsvSource::Path(path) => {
                let file = std::fs::File::open(path)
                    .map_err(|e| EntkError::Usage(format!("reading trace {path:?}: {e}")))?;
                Box::new(CsvStream::new(std::io::BufReader::new(file)))
            }
        })
    }
}

/// The in-repo synthetic trace: a fixed Poisson-over-bursts mixture whose
/// CSV rendering ships with the repository's CI jobs — no external trace
/// data needed. Same seed ⇒ byte-identical CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticTrace {
    /// Master seed.
    pub seed: u64,
    /// Sessions to emit.
    pub sessions: usize,
    /// Tenant population size.
    pub tenants: u64,
}

impl SyntheticTrace {
    /// A synthetic trace of `sessions` sessions over `tenants` tenants.
    pub fn new(seed: u64, sessions: usize, tenants: u64) -> Self {
        SyntheticTrace {
            seed,
            sessions,
            tenants,
        }
    }

    /// Renders the synthetic workload as CSV trace text.
    pub fn to_csv(&self) -> Result<String, EntkError> {
        Ok(render_trace(&self.generate()?))
    }
}

impl WorkloadGenerator for SyntheticTrace {
    fn stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        // Two interleaved open-loop sources on forked seed streams: a
        // steady Poisson background and a bursty foreground, merged lazily
        // by arrival time with a deterministic tie-break (background
        // first). Only the two head rows are ever resident.
        let n_background = self.sessions.div_ceil(2);
        let n_bursts = self.sessions - n_background;
        let background =
            OpenLoopProcess::poisson(self.seed, n_background, self.tenants, 40.0).stream()?;
        let bursts: Box<dyn ArrivalStream> = if n_bursts == 0 {
            // sessions == 1 leaves the burst half empty; that is fine.
            Box::new(VecStream::new(Vec::new()))
        } else {
            OpenLoopProcess::burst(
                self.seed ^ 0x9E37_79B9_7F4A_7C15,
                n_bursts,
                self.tenants,
                4,
                180.0,
            )
            .stream()?
        };
        Ok(Box::new(MergeStream::new(background, bursts, |r| r, |r| r)))
    }
}

/// Lazily merges two already-sorted arrival streams by arrival time with
/// a deterministic tie-break (the first stream wins ties), applying a
/// per-stream row map as rows are pulled. This is how the synthetic
/// traces interleave their background and burst halves without
/// materializing either: resident state is exactly the two head rows.
struct MergeStream {
    a: Box<dyn ArrivalStream>,
    b: Box<dyn ArrivalStream>,
    map_a: fn(SessionArrival) -> SessionArrival,
    map_b: fn(SessionArrival) -> SessionArrival,
    head_a: Option<SessionArrival>,
    head_b: Option<SessionArrival>,
    primed: bool,
}

impl MergeStream {
    fn new(
        a: Box<dyn ArrivalStream>,
        b: Box<dyn ArrivalStream>,
        map_a: fn(SessionArrival) -> SessionArrival,
        map_b: fn(SessionArrival) -> SessionArrival,
    ) -> Self {
        MergeStream {
            a,
            b,
            map_a,
            map_b,
            head_a: None,
            head_b: None,
            primed: false,
        }
    }
}

impl ArrivalStream for MergeStream {
    fn next_arrival(&mut self) -> Result<Option<SessionArrival>, EntkError> {
        if !self.primed {
            self.head_a = self.a.next_arrival()?.map(self.map_a);
            self.head_b = self.b.next_arrival()?.map(self.map_b);
            self.primed = true;
        }
        let take_a = match (&self.head_a, &self.head_b) {
            (Some(x), Some(y)) => x.arrival <= y.arrival,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return Ok(None),
        };
        if take_a {
            let out = self.head_a.take();
            self.head_a = self.a.next_arrival()?.map(self.map_a);
            Ok(out)
        } else {
            let out = self.head_b.take();
            self.head_b = self.b.next_arrival()?.map(self.map_b);
            Ok(out)
        }
    }

    fn remaining_hint(&self) -> Option<usize> {
        let heads = usize::from(self.head_a.is_some()) + usize::from(self.head_b.is_some());
        match (self.a.remaining_hint(), self.b.remaining_hint()) {
            (Some(x), Some(y)) => Some(x + y + heads),
            _ => None,
        }
    }
}

/// A hot-tenant contention trace for fairness ablations: a steady Poisson
/// background over `tenants` light tenants (ids `1..=tenants`) with
/// tenant 0 dumping concentrated bursts on top. Under FIFO admission the
/// light tenants queue behind each burst; a fair-share policy lets them
/// jump it. Same seed ⇒ byte-identical CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotTenantTrace {
    /// Master seed.
    pub seed: u64,
    /// Total sessions to emit (split between background and bursts).
    pub sessions: usize,
    /// Light-tenant population size (the hot tenant is extra, id 0).
    pub tenants: u64,
}

impl HotTenantTrace {
    /// A hot-tenant trace of `sessions` sessions over `tenants` light
    /// tenants plus the bursting tenant 0.
    pub fn new(seed: u64, sessions: usize, tenants: u64) -> Self {
        HotTenantTrace {
            seed,
            sessions,
            tenants,
        }
    }

    /// Renders the workload as CSV trace text.
    pub fn to_csv(&self) -> Result<String, EntkError> {
        Ok(render_trace(&self.generate()?))
    }
}

impl WorkloadGenerator for HotTenantTrace {
    fn stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        let n_background = self.sessions.div_ceil(2);
        let n_hot = self.sessions - n_background;
        let background =
            OpenLoopProcess::poisson(self.seed, n_background, self.tenants, 60.0).stream()?;
        let hot: Box<dyn ArrivalStream> = if n_hot == 0 {
            Box::new(VecStream::new(Vec::new()))
        } else {
            OpenLoopProcess::burst(self.seed ^ 0x5DEE_CE66_D5C5_133F, n_hot, 1, 8, 240.0)
                .stream()?
        };
        // The generators draw tenant ids in [0, tenants); shift the
        // background up so id 0 belongs exclusively to the hot tenant.
        Ok(Box::new(MergeStream::new(
            background,
            hot,
            |mut r| {
                r.tenant += 1;
                r
            },
            |mut r| {
                r.tenant = 0;
                r
            },
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_trace() -> String {
        format!(
            "{TRACE_HEADER}\n\
             0.000000,3,eop,8,2,misc.sleep,32\n\
             12.504119,0,sal,16,1,md.amber,64\n\
             12.504119,1,ee,4,2,md.gromacs,16\n\
             900.000000,2,pst,4,3,misc.mkfile,16\n"
        )
    }

    #[test]
    fn parses_a_valid_trace() {
        let rows = parse_trace(&ok_trace()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].pattern, PatternKind::Eop);
        assert_eq!(rows[1].arrival.as_micros(), 12_504_119);
        assert_eq!(rows[2].kernel, "md.gromacs");
        assert_eq!(rows[3].tenant, 2);
    }

    #[test]
    fn render_parse_round_trips() {
        let rows = parse_trace(&ok_trace()).unwrap();
        let text = render_trace(&rows);
        assert_eq!(parse_trace(&text).unwrap(), rows);
        assert_eq!(text, ok_trace());
    }

    #[test]
    fn empty_trace_is_a_usage_error() {
        for text in ["", TRACE_HEADER, &format!("{TRACE_HEADER}\n\n")] {
            match parse_trace(text) {
                Err(EntkError::Usage(msg)) => assert!(msg.contains("empty trace"), "{msg}"),
                other => panic!("expected Usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_header_is_a_usage_error() {
        let text = "time,tenant\n0.0,1\n";
        match parse_trace(text) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("bad header"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_are_usage_errors_with_line_numbers() {
        let cases = [
            ("0.0,1,eop,8,2,misc.sleep", "7 comma-separated"), // 6 fields
            ("zero,1,eop,8,2,misc.sleep,32", "bad arrival_time"),
            ("-1.0,1,eop,8,2,misc.sleep,32", "non-negative"),
            ("0.0,alice,eop,8,2,misc.sleep,32", "bad tenant"),
            ("0.0,1,eop,many,2,misc.sleep,32", "bad tasks"),
            ("0.0,1,eop,8,x,misc.sleep,32", "bad stages"),
            ("0.0,1,eop,8,2,misc.sleep,none", "bad cores"),
            ("0.0,1,eop,0,2,misc.sleep,32", "tasks must be"),
            ("0.0,1,eop,8,0,misc.sleep,32", "stages must be"),
            ("0.0,1,eop,8,2,misc.sleep,0", "cores must be"),
        ];
        for (row, needle) in cases {
            let text = format!("{TRACE_HEADER}\n{row}\n");
            match parse_trace(&text) {
                Err(EntkError::Usage(msg)) => {
                    assert!(msg.contains("line 2"), "{msg}");
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
                }
                other => panic!("row {row:?}: expected Usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_pattern_and_kernel_are_usage_errors() {
        let bad_pattern = format!("{TRACE_HEADER}\n0.0,1,dag,8,2,misc.sleep,32\n");
        match parse_trace(&bad_pattern) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("unknown pattern"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
        let bad_kernel = format!("{TRACE_HEADER}\n0.0,1,eop,8,2,md.lammps,32\n");
        match parse_trace(&bad_kernel) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("unknown kernel"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_arrivals_are_usage_errors() {
        let text = format!(
            "{TRACE_HEADER}\n\
             10.000000,1,eop,8,2,misc.sleep,32\n\
             5.000000,1,eop,8,2,misc.sleep,32\n"
        );
        match parse_trace(&text) {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("sorted by arrival_time"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_trace_replays_and_round_trips() {
        let synth = SyntheticTrace::new(11, 60, 12);
        let rows = synth.generate().unwrap();
        assert_eq!(rows.len(), 60);
        for w in rows.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert_eq!(rows, synth.generate().unwrap());
        let csv = synth.to_csv().unwrap();
        assert_eq!(parse_trace(&csv).unwrap(), rows);
        assert_eq!(csv, synth.to_csv().unwrap());
    }

    #[test]
    fn reserved_tenant_sentinel_is_rejected_with_line_number() {
        // u64::MAX is the all-tenants aggregate sentinel in latency
        // reports; a trace row claiming it used to merge silently into
        // the aggregate.
        let text = format!(
            "{TRACE_HEADER}\n\
             0.000000,1,eop,8,2,misc.sleep,32\n\
             5.000000,18446744073709551615,eop,8,2,misc.sleep,32\n"
        );
        match parse_trace(&text) {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("reserved"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn hot_tenant_trace_isolates_tenant_zero_bursts() {
        let trace = HotTenantTrace::new(5, 40, 6);
        let rows = trace.generate().unwrap();
        assert_eq!(rows.len(), 40);
        for w in rows.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        let hot = rows.iter().filter(|r| r.tenant == 0).count();
        assert_eq!(hot, 20, "the hot tenant submits half the stream");
        assert!(rows.iter().all(|r| r.tenant <= 6));
        assert_eq!(rows, trace.generate().unwrap());
        let csv = trace.to_csv().unwrap();
        assert_eq!(parse_trace(&csv).unwrap(), rows);
    }

    #[test]
    fn csv_trace_generator_delegates_to_parse() {
        let gen = CsvTrace::new(ok_trace());
        assert_eq!(gen.generate().unwrap().len(), 4);
        assert!(CsvTrace::new("garbage").generate().is_err());
        assert!(CsvTrace::from_path("/nonexistent/trace.csv").is_err());
    }

    #[test]
    fn invalid_utf8_is_a_typed_error_with_line_number() {
        let mut bytes = format!("{TRACE_HEADER}\n0.0,1,eop,8,2,misc.sleep,32\n").into_bytes();
        bytes.extend_from_slice(b"\xff\xfe,1,eop,8,2,misc.sleep,32\n");
        let mut stream = CsvStream::new(std::io::Cursor::new(bytes));
        assert!(stream.next_arrival().unwrap().is_some());
        match stream.next_arrival() {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("UTF-8"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn file_backed_trace_streams_without_loading_the_file() {
        let path = std::env::temp_dir().join(format!("entk-trace-test-{}.csv", std::process::id()));
        std::fs::write(&path, ok_trace()).unwrap();
        let gen = CsvTrace::from_path(path.to_str().unwrap()).unwrap();
        let mut stream = gen.stream().unwrap();
        let mut rows = Vec::new();
        while let Some(row) = stream.next_arrival().unwrap() {
            rows.push(row);
        }
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rows, parse_trace(&ok_trace()).unwrap());
        // Each stream() call opens its own handle; with the file deleted,
        // a fresh stream fails at open time rather than mid-pull.
        assert!(gen.generate().is_err());
    }

    #[test]
    fn streamed_order_violations_fail_at_the_offending_row() {
        let text = format!(
            "{TRACE_HEADER}\n\
             10.000000,1,eop,8,2,misc.sleep,32\n\
             5.000000,1,eop,8,2,misc.sleep,32\n"
        );
        let mut stream = CsvStream::new(std::io::Cursor::new(text.into_bytes()));
        // The first row parses fine; the violation surfaces on the pull
        // that reads the out-of-order row, not upfront.
        assert!(stream.next_arrival().unwrap().is_some());
        match stream.next_arrival() {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("sorted by arrival_time"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_traces_stream_lazily_with_exact_hints() {
        for sessions in [1usize, 2, 17, 60] {
            let synth = SyntheticTrace::new(11, sessions, 12);
            let mut stream = synth.stream().unwrap();
            assert_eq!(stream.remaining_hint(), Some(sessions));
            let mut rows = Vec::new();
            while let Some(row) = stream.next_arrival().unwrap() {
                rows.push(row);
            }
            assert_eq!(rows, synth.generate().unwrap());
            assert_eq!(stream.remaining_hint(), Some(0));
        }
        let hot = HotTenantTrace::new(5, 40, 6);
        let mut stream = hot.stream().unwrap();
        assert_eq!(stream.remaining_hint(), Some(40));
        let mut rows = Vec::new();
        while let Some(row) = stream.next_arrival().unwrap() {
            rows.push(row);
        }
        assert_eq!(rows, hot.generate().unwrap());
    }
}
