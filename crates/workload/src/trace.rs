//! CSV workload traces: an Alibaba/Google-style schema binding arrival
//! rows to session requests, plus a synthetic generator so CI needs no
//! external data.
//!
//! Schema (header required, one session per row):
//!
//! ```csv
//! arrival_time,tenant,pattern,tasks,stages,kernel,cores
//! 0.000000,3,eop,8,2,misc.sleep,32
//! 12.504119,0,sal,16,1,md.amber,64
//! ```
//!
//! `arrival_time` is virtual seconds since stream start with microsecond
//! resolution — exactly the simulator's clock grain, so render → parse
//! round-trips losslessly ([`render_trace`] writes six decimal places and
//! [`parse_trace`] rounds to the nearest microsecond). Rows must be sorted
//! by non-decreasing `arrival_time`. All violations surface as typed
//! [`EntkError::Usage`] values naming the offending line, never panics.

use crate::arrival::{PatternKind, SessionArrival, WorkloadGenerator};
use crate::OpenLoopProcess;
use entk_core::EntkError;
use entk_sim::SimDuration;

/// The trace header; every trace file starts with exactly this line.
pub const TRACE_HEADER: &str = "arrival_time,tenant,pattern,tasks,stages,kernel,cores";

/// Renders arrivals as CSV text in the canonical schema. Output parses
/// back to the same rows ([`parse_trace`] is its exact inverse).
pub fn render_trace(arrivals: &[SessionArrival]) -> String {
    let mut out = String::with_capacity(32 * (arrivals.len() + 1));
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for a in arrivals {
        out.push_str(&format!(
            "{:.6},{},{},{},{},{},{}\n",
            a.arrival.as_secs_f64(),
            a.tenant,
            a.pattern.as_str(),
            a.tasks,
            a.stages,
            a.kernel,
            a.cores,
        ));
    }
    out
}

/// Parses CSV text in the canonical schema into validated, time-ordered
/// arrivals. Every malformed input — missing or wrong header, wrong column
/// count, unparsable numbers, unknown pattern or kernel names, rows out of
/// arrival order, or a trace with no data rows — is a typed
/// [`EntkError::Usage`] carrying the 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<SessionArrival>, EntkError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(EntkError::Usage("empty trace: missing header".into()));
    };
    if header.trim() != TRACE_HEADER {
        return Err(EntkError::Usage(format!(
            "line 1: bad header {:?} (expected {TRACE_HEADER:?})",
            header.trim()
        )));
    }
    let mut arrivals = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(EntkError::Usage(format!(
                "line {lineno}: expected 7 comma-separated fields, got {}",
                fields.len()
            )));
        }
        let arrival_secs: f64 = fields[0].parse().map_err(|_| {
            EntkError::Usage(format!("line {lineno}: bad arrival_time {:?}", fields[0]))
        })?;
        if !arrival_secs.is_finite() || arrival_secs < 0.0 {
            return Err(EntkError::Usage(format!(
                "line {lineno}: arrival_time must be a finite non-negative number"
            )));
        }
        let tenant: u64 = fields[1]
            .parse()
            .map_err(|_| EntkError::Usage(format!("line {lineno}: bad tenant {:?}", fields[1])))?;
        let pattern = PatternKind::parse(fields[2])
            .map_err(|e| EntkError::Usage(format!("line {lineno}: {e}")))?;
        let tasks: usize = fields[3]
            .parse()
            .map_err(|_| EntkError::Usage(format!("line {lineno}: bad tasks {:?}", fields[3])))?;
        let stages: usize = fields[4]
            .parse()
            .map_err(|_| EntkError::Usage(format!("line {lineno}: bad stages {:?}", fields[4])))?;
        let cores: usize = fields[6]
            .parse()
            .map_err(|_| EntkError::Usage(format!("line {lineno}: bad cores {:?}", fields[6])))?;
        let row = SessionArrival {
            arrival: entk_sim::SimTime::ZERO + SimDuration::from_secs_f64(arrival_secs),
            tenant,
            pattern,
            tasks,
            stages,
            kernel: fields[5].to_string(),
            cores,
        };
        row.validate()
            .map_err(|e| EntkError::Usage(format!("line {lineno}: {e}")))?;
        if let Some(prev) = arrivals.last() {
            let prev: &SessionArrival = prev;
            if row.arrival < prev.arrival {
                return Err(EntkError::Usage(format!(
                    "line {lineno}: arrival_time {:.6} precedes the previous row's {:.6} \
                     (traces must be sorted by arrival_time)",
                    row.arrival.as_secs_f64(),
                    prev.arrival.as_secs_f64(),
                )));
            }
        }
        arrivals.push(row);
    }
    if arrivals.is_empty() {
        return Err(EntkError::Usage(
            "empty trace: header but no data rows".into(),
        ));
    }
    Ok(arrivals)
}

/// A workload read from CSV trace text.
#[derive(Debug, Clone)]
pub struct CsvTrace {
    text: String,
}

impl CsvTrace {
    /// Wraps trace text (parsed lazily by [`WorkloadGenerator::generate`]).
    pub fn new(text: impl Into<String>) -> Self {
        CsvTrace { text: text.into() }
    }

    /// Reads trace text from a file.
    pub fn from_path(path: &str) -> Result<Self, EntkError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| EntkError::Usage(format!("reading trace {path:?}: {e}")))?;
        Ok(CsvTrace::new(text))
    }
}

impl WorkloadGenerator for CsvTrace {
    fn generate(&self) -> Result<Vec<SessionArrival>, EntkError> {
        parse_trace(&self.text)
    }
}

/// The in-repo synthetic trace: a fixed Poisson-over-bursts mixture whose
/// CSV rendering ships with the repository's CI jobs — no external trace
/// data needed. Same seed ⇒ byte-identical CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticTrace {
    /// Master seed.
    pub seed: u64,
    /// Sessions to emit.
    pub sessions: usize,
    /// Tenant population size.
    pub tenants: u64,
}

impl SyntheticTrace {
    /// A synthetic trace of `sessions` sessions over `tenants` tenants.
    pub fn new(seed: u64, sessions: usize, tenants: u64) -> Self {
        SyntheticTrace {
            seed,
            sessions,
            tenants,
        }
    }

    /// Renders the synthetic workload as CSV trace text.
    pub fn to_csv(&self) -> Result<String, EntkError> {
        Ok(render_trace(&self.generate()?))
    }
}

impl WorkloadGenerator for SyntheticTrace {
    fn generate(&self) -> Result<Vec<SessionArrival>, EntkError> {
        // Two interleaved open-loop sources on forked seed streams: a
        // steady Poisson background and a bursty foreground, merged by
        // arrival time with a deterministic tie-break (background first).
        let background =
            OpenLoopProcess::poisson(self.seed, self.sessions.div_ceil(2), self.tenants, 40.0)
                .generate()?;
        let bursts = OpenLoopProcess::burst(
            self.seed ^ 0x9E37_79B9_7F4A_7C15,
            self.sessions - self.sessions.div_ceil(2),
            self.tenants,
            4,
            180.0,
        )
        .generate();
        let bursts = match bursts {
            Ok(rows) => rows,
            // sessions == 1 leaves the burst half empty; that is fine.
            Err(_) if self.sessions - self.sessions.div_ceil(2) == 0 => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut merged = Vec::with_capacity(self.sessions);
        let (mut i, mut j) = (0, 0);
        while i < background.len() || j < bursts.len() {
            let take_background = match (background.get(i), bursts.get(j)) {
                (Some(a), Some(b)) => a.arrival <= b.arrival,
                (Some(_), None) => true,
                _ => false,
            };
            if take_background {
                merged.push(background[i].clone());
                i += 1;
            } else {
                merged.push(bursts[j].clone());
                j += 1;
            }
        }
        Ok(merged)
    }
}

/// A hot-tenant contention trace for fairness ablations: a steady Poisson
/// background over `tenants` light tenants (ids `1..=tenants`) with
/// tenant 0 dumping concentrated bursts on top. Under FIFO admission the
/// light tenants queue behind each burst; a fair-share policy lets them
/// jump it. Same seed ⇒ byte-identical CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotTenantTrace {
    /// Master seed.
    pub seed: u64,
    /// Total sessions to emit (split between background and bursts).
    pub sessions: usize,
    /// Light-tenant population size (the hot tenant is extra, id 0).
    pub tenants: u64,
}

impl HotTenantTrace {
    /// A hot-tenant trace of `sessions` sessions over `tenants` light
    /// tenants plus the bursting tenant 0.
    pub fn new(seed: u64, sessions: usize, tenants: u64) -> Self {
        HotTenantTrace {
            seed,
            sessions,
            tenants,
        }
    }

    /// Renders the workload as CSV trace text.
    pub fn to_csv(&self) -> Result<String, EntkError> {
        Ok(render_trace(&self.generate()?))
    }
}

impl WorkloadGenerator for HotTenantTrace {
    fn generate(&self) -> Result<Vec<SessionArrival>, EntkError> {
        let n_background = self.sessions.div_ceil(2);
        let n_hot = self.sessions - n_background;
        let mut background =
            OpenLoopProcess::poisson(self.seed, n_background, self.tenants, 60.0).generate()?;
        // The generators draw tenant ids in [0, tenants); shift the
        // background up so id 0 belongs exclusively to the hot tenant.
        for row in &mut background {
            row.tenant += 1;
        }
        let hot = if n_hot == 0 {
            Vec::new()
        } else {
            let mut hot =
                OpenLoopProcess::burst(self.seed ^ 0x5DEE_CE66_D5C5_133F, n_hot, 1, 8, 240.0)
                    .generate()?;
            for row in &mut hot {
                row.tenant = 0;
            }
            hot
        };
        let mut merged = Vec::with_capacity(self.sessions);
        let (mut i, mut j) = (0, 0);
        while i < background.len() || j < hot.len() {
            let take_background = match (background.get(i), hot.get(j)) {
                (Some(a), Some(b)) => a.arrival <= b.arrival,
                (Some(_), None) => true,
                _ => false,
            };
            if take_background {
                merged.push(background[i].clone());
                i += 1;
            } else {
                merged.push(hot[j].clone());
                j += 1;
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_trace() -> String {
        format!(
            "{TRACE_HEADER}\n\
             0.000000,3,eop,8,2,misc.sleep,32\n\
             12.504119,0,sal,16,1,md.amber,64\n\
             12.504119,1,ee,4,2,md.gromacs,16\n\
             900.000000,2,pst,4,3,misc.mkfile,16\n"
        )
    }

    #[test]
    fn parses_a_valid_trace() {
        let rows = parse_trace(&ok_trace()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].pattern, PatternKind::Eop);
        assert_eq!(rows[1].arrival.as_micros(), 12_504_119);
        assert_eq!(rows[2].kernel, "md.gromacs");
        assert_eq!(rows[3].tenant, 2);
    }

    #[test]
    fn render_parse_round_trips() {
        let rows = parse_trace(&ok_trace()).unwrap();
        let text = render_trace(&rows);
        assert_eq!(parse_trace(&text).unwrap(), rows);
        assert_eq!(text, ok_trace());
    }

    #[test]
    fn empty_trace_is_a_usage_error() {
        for text in ["", TRACE_HEADER, &format!("{TRACE_HEADER}\n\n")] {
            match parse_trace(text) {
                Err(EntkError::Usage(msg)) => assert!(msg.contains("empty trace"), "{msg}"),
                other => panic!("expected Usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_header_is_a_usage_error() {
        let text = "time,tenant\n0.0,1\n";
        match parse_trace(text) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("bad header"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_are_usage_errors_with_line_numbers() {
        let cases = [
            ("0.0,1,eop,8,2,misc.sleep", "7 comma-separated"), // 6 fields
            ("zero,1,eop,8,2,misc.sleep,32", "bad arrival_time"),
            ("-1.0,1,eop,8,2,misc.sleep,32", "non-negative"),
            ("0.0,alice,eop,8,2,misc.sleep,32", "bad tenant"),
            ("0.0,1,eop,many,2,misc.sleep,32", "bad tasks"),
            ("0.0,1,eop,8,x,misc.sleep,32", "bad stages"),
            ("0.0,1,eop,8,2,misc.sleep,none", "bad cores"),
            ("0.0,1,eop,0,2,misc.sleep,32", "tasks must be"),
            ("0.0,1,eop,8,0,misc.sleep,32", "stages must be"),
            ("0.0,1,eop,8,2,misc.sleep,0", "cores must be"),
        ];
        for (row, needle) in cases {
            let text = format!("{TRACE_HEADER}\n{row}\n");
            match parse_trace(&text) {
                Err(EntkError::Usage(msg)) => {
                    assert!(msg.contains("line 2"), "{msg}");
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
                }
                other => panic!("row {row:?}: expected Usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_pattern_and_kernel_are_usage_errors() {
        let bad_pattern = format!("{TRACE_HEADER}\n0.0,1,dag,8,2,misc.sleep,32\n");
        match parse_trace(&bad_pattern) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("unknown pattern"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
        let bad_kernel = format!("{TRACE_HEADER}\n0.0,1,eop,8,2,md.lammps,32\n");
        match parse_trace(&bad_kernel) {
            Err(EntkError::Usage(msg)) => assert!(msg.contains("unknown kernel"), "{msg}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_arrivals_are_usage_errors() {
        let text = format!(
            "{TRACE_HEADER}\n\
             10.000000,1,eop,8,2,misc.sleep,32\n\
             5.000000,1,eop,8,2,misc.sleep,32\n"
        );
        match parse_trace(&text) {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("sorted by arrival_time"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_trace_replays_and_round_trips() {
        let synth = SyntheticTrace::new(11, 60, 12);
        let rows = synth.generate().unwrap();
        assert_eq!(rows.len(), 60);
        for w in rows.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert_eq!(rows, synth.generate().unwrap());
        let csv = synth.to_csv().unwrap();
        assert_eq!(parse_trace(&csv).unwrap(), rows);
        assert_eq!(csv, synth.to_csv().unwrap());
    }

    #[test]
    fn reserved_tenant_sentinel_is_rejected_with_line_number() {
        // u64::MAX is the all-tenants aggregate sentinel in latency
        // reports; a trace row claiming it used to merge silently into
        // the aggregate.
        let text = format!(
            "{TRACE_HEADER}\n\
             0.000000,1,eop,8,2,misc.sleep,32\n\
             5.000000,18446744073709551615,eop,8,2,misc.sleep,32\n"
        );
        match parse_trace(&text) {
            Err(EntkError::Usage(msg)) => {
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("reserved"), "{msg}");
            }
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn hot_tenant_trace_isolates_tenant_zero_bursts() {
        let trace = HotTenantTrace::new(5, 40, 6);
        let rows = trace.generate().unwrap();
        assert_eq!(rows.len(), 40);
        for w in rows.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        let hot = rows.iter().filter(|r| r.tenant == 0).count();
        assert_eq!(hot, 20, "the hot tenant submits half the stream");
        assert!(rows.iter().all(|r| r.tenant <= 6));
        assert_eq!(rows, trace.generate().unwrap());
        let csv = trace.to_csv().unwrap();
        assert_eq!(parse_trace(&csv).unwrap(), rows);
    }

    #[test]
    fn csv_trace_generator_delegates_to_parse() {
        let gen = CsvTrace::new(ok_trace());
        assert_eq!(gen.generate().unwrap().len(), 4);
        assert!(CsvTrace::new("garbage").generate().is_err());
        assert!(CsvTrace::from_path("/nonexistent/trace.csv").is_err());
    }
}
