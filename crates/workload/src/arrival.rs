//! Session arrivals and the open-loop generators that produce them.
//!
//! An arrival is one tenant's request for a whole ensemble session — a
//! pattern shape, a size, a kernel, and a core count — stamped with the
//! virtual time at which it enters the stream. Generators are *open loop*:
//! arrival times never depend on how fast earlier sessions complete, which
//! is what makes a stream replayable from its seed alone.

use entk_core::prelude::*;
use entk_core::EntkError;
use entk_sim::{SimRng, SimTime};
use serde_json::json;

/// The pattern shapes a trace row may request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternKind {
    /// Ensemble of pipelines: `tasks` pipelines × `stages` stages.
    Eop,
    /// Simulation–analysis loop: `stages` iterations × `tasks` simulations
    /// (plus one analysis task per iteration).
    Sal,
    /// Ensemble exchange: `tasks` replicas × `stages` MD+exchange cycles.
    Ee,
    /// Pipeline–stage–task workflow: `tasks` pipelines × `stages`
    /// single-task stages.
    Pst,
}

impl PatternKind {
    /// All kinds, in trace-schema order.
    pub const ALL: [PatternKind; 4] = [
        PatternKind::Eop,
        PatternKind::Sal,
        PatternKind::Ee,
        PatternKind::Pst,
    ];

    /// The trace-schema name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            PatternKind::Eop => "eop",
            PatternKind::Sal => "sal",
            PatternKind::Ee => "ee",
            PatternKind::Pst => "pst",
        }
    }

    /// Parses a trace-schema pattern name.
    pub fn parse(s: &str) -> Result<Self, EntkError> {
        match s {
            "eop" => Ok(PatternKind::Eop),
            "sal" => Ok(PatternKind::Sal),
            "ee" => Ok(PatternKind::Ee),
            "pst" => Ok(PatternKind::Pst),
            other => Err(EntkError::Usage(format!(
                "unknown pattern {other:?} (expected one of eop, sal, ee, pst)"
            ))),
        }
    }
}

/// Kernel plugins a trace row may name. Restricting the set keeps every
/// generated session bindable against the built-in registry without
/// external inputs; `ana.coco` is bound implicitly as the SAL analysis
/// stage and is not a valid *row* kernel.
pub const SUPPORTED_KERNELS: &[&str] = &[
    "misc.sleep",
    "misc.stress",
    "misc.mkfile",
    "misc.ccount",
    "md.amber",
    "md.gromacs",
];

/// One session entering the stream: the unit both trace rows and arrival
/// processes produce, and the unit the stream runner admits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionArrival {
    /// Virtual instant at which the session enters the stream.
    pub arrival: SimTime,
    /// Owning tenant id.
    pub tenant: u64,
    /// Requested pattern shape.
    pub pattern: PatternKind,
    /// Primary size axis (pipelines / simulations / replicas).
    pub tasks: usize,
    /// Secondary size axis (stages / iterations / cycles).
    pub stages: usize,
    /// Kernel plugin driving the session's main tasks.
    pub kernel: String,
    /// Cores of the session's pilot (per member cluster when federated).
    pub cores: usize,
}

impl SessionArrival {
    /// Validates the row against the schema invariants shared by every
    /// generator: positive sizes and a supported kernel.
    pub fn validate(&self) -> Result<(), EntkError> {
        if self.tenant == u64::MAX {
            // u64::MAX marks the all-tenants aggregate row in latency
            // reports; a session submitted under it would silently merge
            // into that aggregate.
            return Err(EntkError::Usage(format!(
                "tenant {} is reserved for the all-tenants aggregate",
                u64::MAX
            )));
        }
        if self.tasks == 0 {
            return Err(EntkError::Usage("tasks must be >= 1".into()));
        }
        if self.stages == 0 {
            return Err(EntkError::Usage("stages must be >= 1".into()));
        }
        if self.cores == 0 {
            return Err(EntkError::Usage("cores must be >= 1".into()));
        }
        if !SUPPORTED_KERNELS.contains(&self.kernel.as_str()) {
            return Err(EntkError::Usage(format!(
                "unknown kernel {:?} (supported: {})",
                self.kernel,
                SUPPORTED_KERNELS.join(", ")
            )));
        }
        Ok(())
    }

    /// Total task count the session will execute (including implicit SAL
    /// analysis tasks), used to weight scheduling and sanity-check reports.
    pub fn task_count(&self) -> usize {
        match self.pattern {
            PatternKind::Eop | PatternKind::Pst => self.tasks * self.stages,
            PatternKind::Sal => self.stages * (self.tasks + 1),
            PatternKind::Ee => self.tasks * self.stages * 2,
        }
    }

    /// Compiles the arrival into an executable pattern. The binding is a
    /// pure function of the row, so replaying a trace rebuilds identical
    /// sessions.
    pub fn build_pattern(&self) -> Result<Box<dyn ExecutionPattern + Send>, EntkError> {
        self.validate()?;
        let kernel = self.kernel.clone();
        Ok(match self.pattern {
            PatternKind::Eop => {
                let stages = self.stages;
                Box::new(EnsembleOfPipelines::new(
                    self.tasks,
                    self.stages,
                    move |p, s| kernel_call(&kernel, p * stages + s, None),
                ))
            }
            PatternKind::Sal => {
                let tasks = self.tasks;
                Box::new(SimulationAnalysisLoop::new(
                    self.stages,
                    self.tasks,
                    move |iter, i| kernel_call(&kernel, iter * tasks + i, None),
                    |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
                ))
            }
            PatternKind::Ee => Box::new(EnsembleExchange::new(
                self.tasks,
                self.stages,
                TemperatureLadder::geometric(self.tasks, 0.8, 2.4),
                move |r, c, t| kernel_call(&kernel, r * 31 + c, Some(t)),
            )),
            PatternKind::Pst => {
                let pipelines = (0..self.tasks)
                    .map(|p| {
                        let mut pipe = Pipeline::new(format!("p{p}"));
                        for s in 0..self.stages {
                            pipe = pipe.with_stage(Stage::new(format!("stage-{s}")).with_task(
                                PstTask::new(
                                    format!("t{p}.{s}"),
                                    kernel_call(&kernel, p * self.stages + s, None),
                                ),
                            ));
                        }
                        pipe
                    })
                    .collect();
                Box::new(PstWorkflow::new(pipelines))
            }
        })
    }
}

/// Binds a supported kernel with canonical arguments. `index`
/// differentiates per-task randomness (MD seeds); `temperature` is set for
/// replica-exchange MD segments only.
fn kernel_call(kernel: &str, index: usize, temperature: Option<f64>) -> KernelCall {
    let args = match kernel {
        "misc.sleep" => json!({ "secs": 10.0 }),
        "misc.mkfile" | "misc.ccount" => json!({ "bytes": 1024 }),
        "misc.stress" => json!({}),
        // md.amber / md.gromacs — validated upstream.
        _ => {
            let mut args = json!({ "steps": 300, "n_atoms": 2881, "seed": index as u64 });
            if let Some(t) = temperature {
                args["temperature"] = json!(t);
            }
            args
        }
    };
    KernelCall::new(kernel.to_string(), args)
}

/// A pull-based source of session arrivals.
///
/// Streams yield rows one at a time in non-decreasing arrival order, which
/// is what lets the service engine keep a bounded read-ahead window over a
/// disk-backed trace instead of materializing every arrival up front.
/// Implementations must be deterministic — pulling the same stream twice
/// (via two [`WorkloadGenerator::stream`] calls) yields identical rows —
/// and must keep returning `Ok(None)` once exhausted.
pub trait ArrivalStream: Send {
    /// Pulls the next arrival, `Ok(None)` at end of stream. Errors are
    /// sticky in practice: callers stop pulling after the first `Err`.
    fn next_arrival(&mut self) -> Result<Option<SessionArrival>, EntkError>;

    /// Exact number of arrivals left, when the source knows it (seeded
    /// generators and in-memory vectors do; disk-backed traces return
    /// `None`). Used only for capacity hints, never for control flow.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// An in-memory arrival stream over an owned, already-sorted vector.
#[derive(Debug)]
pub struct VecStream {
    rows: std::vec::IntoIter<SessionArrival>,
}

impl VecStream {
    /// Wraps an owned vector of arrivals. Rows are yielded as-is; the
    /// consumer (the service engine) still validates order and content.
    pub fn new(rows: Vec<SessionArrival>) -> Self {
        VecStream {
            rows: rows.into_iter(),
        }
    }
}

impl ArrivalStream for VecStream {
    fn next_arrival(&mut self) -> Result<Option<SessionArrival>, EntkError> {
        Ok(self.rows.next())
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.rows.len())
    }
}

/// Conversion into a boxed [`ArrivalStream`], so stream consumers accept
/// lazy streams, owned vectors, and borrowed slices interchangeably.
/// Slices are cloned (a convenience for tests and small call sites);
/// anything that can hand over ownership streams without double-buffering.
pub trait IntoArrivalStream {
    /// Converts `self` into a boxed arrival stream.
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError>;
}

impl<S: ArrivalStream + 'static> IntoArrivalStream for S {
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        Ok(Box::new(self))
    }
}

impl IntoArrivalStream for Box<dyn ArrivalStream> {
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        Ok(self)
    }
}

impl IntoArrivalStream for Vec<SessionArrival> {
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        Ok(Box::new(VecStream::new(self)))
    }
}

impl IntoArrivalStream for &[SessionArrival] {
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        Ok(Box::new(VecStream::new(self.to_vec())))
    }
}

impl IntoArrivalStream for &Vec<SessionArrival> {
    fn into_arrival_stream(self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        self.as_slice().into_arrival_stream()
    }
}

/// A source of session arrivals. Implementations must be deterministic:
/// two streams from the same value yield identical rows.
pub trait WorkloadGenerator {
    /// Opens a lazy stream over the generator's arrivals, sorted by
    /// non-decreasing arrival time and individually valid. Configuration
    /// errors (degenerate parameters, unreadable trace files) surface
    /// here, before the first pull.
    fn stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError>;

    /// Collects the whole stream into a vector. Convenience for small
    /// workloads and tests; out-of-core callers pull [`Self::stream`]
    /// directly.
    fn generate(&self) -> Result<Vec<SessionArrival>, EntkError> {
        let mut stream = self.stream()?;
        let mut rows = Vec::with_capacity(stream.remaining_hint().unwrap_or(0));
        while let Some(row) = stream.next_arrival()? {
            rows.push(row);
        }
        Ok(rows)
    }
}

/// Inter-arrival structure of an [`OpenLoopProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps.
    Poisson {
        /// Mean gap between consecutive sessions, in virtual seconds.
        mean_interarrival_secs: f64,
    },
    /// Bursty arrivals: groups of `burst_size` sessions land together
    /// (1 ms apart, preserving strict arrival order), with exponential
    /// gaps between groups.
    Burst {
        /// Sessions per burst.
        burst_size: usize,
        /// Mean gap between bursts, in virtual seconds.
        mean_gap_secs: f64,
    },
}

/// Seeded open-loop arrival process over a population of simulated
/// tenants. Each draw picks a tenant, a pattern shape, a size, and a
/// kernel from a fixed heterogeneous mix; the arrival clock advances
/// according to [`ArrivalProcess`]. Same seed ⇒ byte-identical rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopProcess {
    /// Master seed of the generator's RNG stream.
    pub seed: u64,
    /// Number of sessions to emit.
    pub sessions: usize,
    /// Tenant population size (tenant ids are drawn from `0..tenants`).
    pub tenants: u64,
    /// Inter-arrival structure.
    pub process: ArrivalProcess,
}

impl OpenLoopProcess {
    /// A Poisson process with the given mean inter-arrival gap.
    pub fn poisson(seed: u64, sessions: usize, tenants: u64, mean_interarrival_secs: f64) -> Self {
        OpenLoopProcess {
            seed,
            sessions,
            tenants,
            process: ArrivalProcess::Poisson {
                mean_interarrival_secs,
            },
        }
    }

    /// A bursty process: `burst_size` sessions per burst, exponential gaps
    /// of mean `mean_gap_secs` between bursts.
    pub fn burst(
        seed: u64,
        sessions: usize,
        tenants: u64,
        burst_size: usize,
        mean_gap_secs: f64,
    ) -> Self {
        OpenLoopProcess {
            seed,
            sessions,
            tenants,
            process: ArrivalProcess::Burst {
                burst_size,
                mean_gap_secs,
            },
        }
    }
}

impl WorkloadGenerator for OpenLoopProcess {
    fn stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        if self.sessions == 0 {
            return Err(EntkError::Usage(
                "workload needs at least one session".into(),
            ));
        }
        if self.tenants == 0 {
            return Err(EntkError::Usage(
                "workload needs at least one tenant".into(),
            ));
        }
        match self.process {
            ArrivalProcess::Poisson {
                mean_interarrival_secs,
            } if mean_interarrival_secs.is_nan() || mean_interarrival_secs <= 0.0 => {
                return Err(EntkError::Usage(
                    "mean_interarrival_secs must be positive".into(),
                ));
            }
            ArrivalProcess::Burst {
                burst_size,
                mean_gap_secs,
            } if burst_size == 0 || mean_gap_secs.is_nan() || mean_gap_secs <= 0.0 => {
                return Err(EntkError::Usage(
                    "burst_size and mean_gap_secs must be positive".into(),
                ));
            }
            _ => {}
        }
        Ok(Box::new(OpenLoopStream {
            spec: self.clone(),
            rng: SimRng::seed_from_u64(self.seed),
            // The clock is accumulated in whole microseconds so that CSV
            // round-trips ({:.6} seconds ⇒ parse) are exact.
            clock: SimTime::ZERO,
            next: 0,
        }))
    }
}

/// Lazy pull state of a validated [`OpenLoopProcess`]. The draw order per
/// session is fixed (gap, tenant, pattern, tasks, stages, kernel, cores),
/// so the stream is byte-identical to collecting the process eagerly.
struct OpenLoopStream {
    spec: OpenLoopProcess,
    rng: SimRng,
    clock: SimTime,
    next: usize,
}

impl ArrivalStream for OpenLoopStream {
    fn next_arrival(&mut self) -> Result<Option<SessionArrival>, EntkError> {
        if self.next >= self.spec.sessions {
            return Ok(None);
        }
        let i = self.next;
        self.next += 1;
        let gap_secs = match self.spec.process {
            ArrivalProcess::Poisson {
                mean_interarrival_secs,
            } => self.rng.exponential(mean_interarrival_secs),
            ArrivalProcess::Burst {
                burst_size,
                mean_gap_secs,
            } => {
                if i > 0 && i.is_multiple_of(burst_size) {
                    self.rng.exponential(mean_gap_secs)
                } else if i == 0 {
                    0.0
                } else {
                    0.001 // within-burst spacing keeps arrivals ordered
                }
            }
        };
        self.clock += entk_sim::SimDuration::from_secs_f64(gap_secs);
        let tenant = self.rng.index(self.spec.tenants as usize) as u64;
        // Heterogeneous mix: EoP-heavy, with SAL, EE and PST minorities
        // — matching the "ensembles dominate" framing of the paper.
        let pattern = match self.rng.index(10) {
            0..=3 => PatternKind::Eop,
            4..=6 => PatternKind::Sal,
            7..=8 => PatternKind::Ee,
            _ => PatternKind::Pst,
        };
        let tasks = 4 << self.rng.index(3); // 4, 8, or 16
        let stages = 1 + self.rng.index(3); // 1..=3
        let kernel = SUPPORTED_KERNELS[self.rng.index(SUPPORTED_KERNELS.len())].to_string();
        let cores = 16 << self.rng.index(3); // 16, 32, or 64
        let arrival = SessionArrival {
            arrival: self.clock,
            tenant,
            pattern,
            tasks,
            stages,
            kernel,
            cores,
        };
        arrival.validate()?;
        Ok(Some(arrival))
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.spec.sessions - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_process_replays_identically() {
        let gen = OpenLoopProcess::poisson(7, 100, 16, 30.0);
        assert_eq!(gen.generate().unwrap(), gen.generate().unwrap());
    }

    #[test]
    fn arrivals_are_time_ordered_and_valid() {
        for gen in [
            OpenLoopProcess::poisson(1, 200, 1000, 5.0),
            OpenLoopProcess::burst(2, 200, 1000, 8, 120.0),
        ] {
            let rows = gen.generate().unwrap();
            assert_eq!(rows.len(), 200);
            for w in rows.windows(2) {
                assert!(w[1].arrival >= w[0].arrival, "arrivals out of order");
            }
            for r in &rows {
                r.validate().unwrap();
                assert!(r.tenant < 1000);
            }
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = OpenLoopProcess::poisson(1, 50, 16, 30.0)
            .generate()
            .unwrap();
        let b = OpenLoopProcess::poisson(2, 50, 16, 30.0)
            .generate()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_covers_every_pattern_kind() {
        let rows = OpenLoopProcess::poisson(3, 400, 64, 10.0)
            .generate()
            .unwrap();
        for kind in PatternKind::ALL {
            assert!(
                rows.iter().any(|r| r.pattern == kind),
                "mix never produced {kind:?}"
            );
        }
    }

    #[test]
    fn degenerate_processes_are_rejected() {
        assert!(OpenLoopProcess::poisson(1, 0, 16, 30.0).generate().is_err());
        assert!(OpenLoopProcess::poisson(1, 10, 0, 30.0).generate().is_err());
        assert!(OpenLoopProcess::poisson(1, 10, 16, 0.0).generate().is_err());
        assert!(OpenLoopProcess::burst(1, 10, 16, 0, 30.0)
            .generate()
            .is_err());
    }

    #[test]
    fn every_arrival_builds_a_runnable_pattern() {
        let rows = OpenLoopProcess::poisson(5, 40, 8, 10.0).generate().unwrap();
        for r in &rows {
            let p = r.build_pattern().unwrap();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn lazy_stream_matches_eager_generation() {
        for gen in [
            OpenLoopProcess::poisson(9, 120, 32, 12.0),
            OpenLoopProcess::burst(9, 120, 32, 8, 90.0),
        ] {
            let eager = gen.generate().unwrap();
            let mut stream = gen.stream().unwrap();
            let mut pulled = Vec::new();
            while let Some(row) = stream.next_arrival().unwrap() {
                assert_eq!(
                    stream.remaining_hint(),
                    Some(120 - pulled.len() - 1),
                    "hint tracks the pull cursor"
                );
                pulled.push(row);
            }
            assert_eq!(pulled, eager);
            assert_eq!(stream.next_arrival().unwrap(), None, "fused at EOF");
        }
    }

    #[test]
    fn unknown_kernel_is_a_usage_error() {
        let row = SessionArrival {
            arrival: SimTime::ZERO,
            tenant: 0,
            pattern: PatternKind::Eop,
            tasks: 2,
            stages: 1,
            kernel: "md.lammps".into(),
            cores: 16,
        };
        assert!(matches!(row.validate(), Err(EntkError::Usage(_))));
    }
}
