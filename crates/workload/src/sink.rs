//! Report sinks: named, pluggable destinations for a served stream's
//! outputs, selected from the spec file's `"sinks"` list through the
//! [`entk_core::Registry`] machinery — the last leg of "one spec file
//! drives any grid".
//!
//! Three built-ins:
//!
//! * `jsonl` — appends every session row to a file as it is finalized
//!   (the streaming JSONL shape of the out-of-core serve path, now
//!   spec-selectable).
//! * `gauges` — replays the admission timeline at a fixed virtual-time
//!   period and writes one `{"t", "queue_depth", "in_service"}` JSONL row
//!   per sample.
//! * `summary` — writes the aggregated [`WorkloadReport`] as pretty JSON
//!   when the stream completes.
//!
//! Sinks observe records in emission (arrival) order and are driven by
//! [`dispatch`]; everything they write is deterministic, so two runs of
//! the same spec produce byte-identical sink files (asserted by the
//! `registry-smoke` CI job).

use crate::runner::{render_record, SessionRecord, SessionStatus, WorkloadOutcome, WorkloadReport};
use entk_core::{params_required, EntkError, Registry};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::OnceLock;

/// A destination for the served stream's outputs. A sink sees every
/// finalized session exactly once, in emission order, then the final
/// aggregated report.
pub trait ReportSink: Send {
    /// Registered plugin name (used in error messages).
    fn name(&self) -> &'static str;

    /// One finalized session: the rendered stream-JSONL line (trailing
    /// newline included) plus the typed record it was rendered from.
    fn on_record(&mut self, line: &str, record: &SessionRecord) -> Result<(), EntkError>;

    /// The stream completed; write any buffered output and flush.
    fn finish(&mut self, report: &WorkloadReport) -> Result<(), EntkError>;
}

fn io_err(sink: &str, path: &str, e: std::io::Error) -> EntkError {
    EntkError::Runtime(format!("{sink} sink: {path}: {e}"))
}

fn create(sink: &str, path: &str) -> Result<BufWriter<File>, EntkError> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| io_err(sink, path, e))
}

// ------------------------------------------------------------------ jsonl

/// Streams session rows to a file as they are emitted.
pub struct JsonlSink {
    path: String,
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Opens (truncates) `path` for writing.
    pub fn create(path: impl Into<String>) -> Result<Self, EntkError> {
        let path = path.into();
        let out = create("jsonl", &path)?;
        Ok(JsonlSink { path, out })
    }
}

impl ReportSink for JsonlSink {
    fn name(&self) -> &'static str {
        "jsonl"
    }

    fn on_record(&mut self, line: &str, _record: &SessionRecord) -> Result<(), EntkError> {
        self.out
            .write_all(line.as_bytes())
            .map_err(|e| io_err("jsonl", &self.path, e))
    }

    fn finish(&mut self, _report: &WorkloadReport) -> Result<(), EntkError> {
        self.out.flush().map_err(|e| io_err("jsonl", &self.path, e))
    }
}

// ----------------------------------------------------------------- gauges

/// Samples the queue-depth / in-service gauges every `period_secs` of
/// virtual time. Buffers only three event triples per session (exact
/// microsecond instants, same tie discipline as the report's gauge
/// series: finish → arrive → start), then renders the samples at finish.
pub struct GaugesSink {
    path: String,
    out: BufWriter<File>,
    period_secs: f64,
    // (micros, kind, delta_queued, delta_running); kind orders ties.
    events: Vec<(u64, u8, i64, i64)>,
}

impl GaugesSink {
    /// Opens (truncates) `path`; samples every `period_secs` (> 0).
    pub fn create(path: impl Into<String>, period_secs: f64) -> Result<Self, EntkError> {
        if period_secs <= 0.0 || period_secs.is_nan() {
            return Err(EntkError::Usage(format!(
                "gauges sink: period_secs must be > 0, got {period_secs}"
            )));
        }
        let path = path.into();
        let out = create("gauges", &path)?;
        Ok(GaugesSink {
            path,
            out,
            period_secs,
            events: Vec::new(),
        })
    }
}

impl ReportSink for GaugesSink {
    fn name(&self) -> &'static str {
        "gauges"
    }

    fn on_record(&mut self, _line: &str, r: &SessionRecord) -> Result<(), EntkError> {
        if r.status == SessionStatus::Rejected {
            return Ok(());
        }
        self.events.push((r.arrival_us, 1, 1, 0));
        if r.finish_us > r.start_us {
            self.events.push((r.finish_us, 0, 0, -1));
            self.events.push((r.start_us, 2, -1, 1));
        } else {
            // Zero service time: leave the queue without a running blip.
            self.events.push((r.start_us, 2, -1, 0));
        }
        Ok(())
    }

    fn finish(&mut self, _report: &WorkloadReport) -> Result<(), EntkError> {
        self.events.sort_unstable();
        let period_us = (self.period_secs * 1e6).round().max(1.0) as u64;
        let (mut queued, mut running) = (0i64, 0i64);
        let mut next_tick = 0u64;
        let write_sample = |out: &mut BufWriter<File>, t_us: u64, q: i64, r: i64| {
            writeln!(
                out,
                "{{\"t\":{:.6},\"queue_depth\":{q},\"in_service\":{r}}}",
                t_us as f64 / 1e6
            )
        };
        for &(t, _, dq, dr) in &self.events {
            while next_tick < t {
                write_sample(&mut self.out, next_tick, queued, running)
                    .map_err(|e| io_err("gauges", &self.path, e))?;
                next_tick += period_us;
            }
            queued += dq;
            running += dr;
        }
        // One closing sample at the first tick at/after the last event, so
        // the series always ends back at zero depth.
        write_sample(&mut self.out, next_tick, queued, running)
            .map_err(|e| io_err("gauges", &self.path, e))?;
        self.out
            .flush()
            .map_err(|e| io_err("gauges", &self.path, e))
    }
}

// ---------------------------------------------------------------- summary

/// Writes the aggregated report as pretty JSON when the stream completes.
pub struct SummarySink {
    path: String,
    out: BufWriter<File>,
}

impl SummarySink {
    /// Opens (truncates) `path` for writing.
    pub fn create(path: impl Into<String>) -> Result<Self, EntkError> {
        let path = path.into();
        let out = create("summary", &path)?;
        Ok(SummarySink { path, out })
    }
}

impl ReportSink for SummarySink {
    fn name(&self) -> &'static str {
        "summary"
    }

    fn on_record(&mut self, _line: &str, _record: &SessionRecord) -> Result<(), EntkError> {
        Ok(())
    }

    fn finish(&mut self, report: &WorkloadReport) -> Result<(), EntkError> {
        let text = serde_json::to_string_pretty(report)
            .map_err(|e| EntkError::Runtime(format!("summary sink: {e}")))?;
        self.out
            .write_all(text.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(|e| io_err("summary", &self.path, e))
    }
}

// --------------------------------------------------------------- registry

/// Params of the `jsonl` and `summary` sink plugins.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PathParams {
    /// Output file path (created / truncated).
    path: String,
}

/// Params of the `gauges` sink plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GaugesParams {
    /// Output file path (created / truncated).
    path: String,
    /// Virtual-time sampling period, seconds.
    #[serde(default = "default_period_secs")]
    period_secs: f64,
}

fn default_period_secs() -> f64 {
    60.0
}

/// The report-sink registry: every name a spec file's `"sinks"` list can
/// select. All built-ins require a `path` param, so there is no default
/// construction — an omitted params block is a usage error naming the sink.
pub fn sinks() -> &'static Registry<Box<dyn ReportSink>> {
    static TABLE: OnceLock<Registry<Box<dyn ReportSink>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut r: Registry<Box<dyn ReportSink>> = Registry::new("report sink");
        r.register("jsonl", |_: &(), params| {
            let p: PathParams = params_required("report sink", "jsonl", params)?;
            Ok(Box::new(JsonlSink::create(p.path)?) as Box<dyn ReportSink>)
        });
        r.register("gauges", |_: &(), params| {
            let p: GaugesParams = params_required("report sink", "gauges", params)?;
            Ok(Box::new(GaugesSink::create(p.path, p.period_secs)?) as Box<dyn ReportSink>)
        });
        r.register("summary", |_: &(), params| {
            let p: PathParams = params_required("report sink", "summary", params)?;
            Ok(Box::new(SummarySink::create(p.path)?) as Box<dyn ReportSink>)
        });
        r
    })
}

/// Drives a buffered [`WorkloadOutcome`] through a set of sinks: every
/// record (re-rendered to its exact stream line) in emission order, then
/// the report. The rendered lines are byte-identical to `outcome.jsonl`
/// by construction, so sink output replays exactly.
pub fn dispatch(
    outcome: &WorkloadOutcome,
    sinks: &mut [Box<dyn ReportSink>],
) -> Result<(), EntkError> {
    for record in &outcome.report.records {
        let line = render_record(record);
        for sink in sinks.iter_mut() {
            sink.on_record(&line, record)?;
        }
    }
    for sink in sinks.iter_mut() {
        sink.finish(&outcome.report)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::WorkloadGenerator;
    use crate::runner::serve;
    use crate::trace::SyntheticTrace;
    use crate::WorkloadConfig;
    use entk_core::ComponentSpec;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("entk-sink-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn outcome() -> WorkloadOutcome {
        let arrivals = SyntheticTrace::new(7, 6, 2).generate().unwrap();
        serve(
            &WorkloadConfig {
                slots: 2,
                ..WorkloadConfig::default()
            },
            &arrivals,
        )
        .unwrap()
    }

    #[test]
    fn jsonl_sink_replays_the_stream_bytes() {
        let out = outcome();
        let path = tmp("rows.jsonl");
        let mut sinks: Vec<Box<dyn ReportSink>> = vec![Box::new(JsonlSink::create(&path).unwrap())];
        dispatch(&out, &mut sinks).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, out.jsonl);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gauges_sink_samples_periodically_and_ends_drained() {
        let out = outcome();
        let path = tmp("gauges.jsonl");
        let mut sinks: Vec<Box<dyn ReportSink>> =
            vec![Box::new(GaugesSink::create(&path, 30.0).unwrap())];
        dispatch(&out, &mut sinks).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("t").is_some() && v.get("queue_depth").is_some());
        }
        let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert_eq!(last["queue_depth"].as_i64(), Some(0));
        assert_eq!(last["in_service"].as_i64(), Some(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_sink_writes_the_report_json() {
        let out = outcome();
        let path = tmp("summary.json");
        let mut sinks: Vec<Box<dyn ReportSink>> =
            vec![Box::new(SummarySink::create(&path).unwrap())];
        dispatch(&out, &mut sinks).unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v["sessions"].as_u64(), Some(out.report.sessions as u64));
        assert_eq!(v["stream_fp"].as_str(), Some(out.report.stream_fp.as_str()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_registry_requires_params_and_lists_names() {
        let err = match sinks().build(&ComponentSpec::named("jsonl"), &()) {
            Err(e) => e,
            Ok(_) => panic!("params required"),
        };
        assert!(err.to_string().contains("requires params"), "{err}");
        let err = match sinks().build(&ComponentSpec::named("csv"), &()) {
            Err(e) => e,
            Ok(_) => panic!("unknown sink"),
        };
        let msg = err.to_string();
        for name in ["gauges", "jsonl", "summary"] {
            assert!(msg.contains(name), "{msg}");
        }
    }
}
