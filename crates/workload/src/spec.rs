//! JSON stream specifications: one spec file selects the workload source,
//! backend, admission policy, batch-scheduler plugin, fault grid, and
//! report sinks of a run — every component resolved by name through the
//! registries, never a `match` arm. Used by both `entk run --workload`
//! and `entk serve` (one loader, same line-numbered errors).
//!
//! ```json
//! {
//!   "seed": 42,
//!   "resource": "xsede.stampede",
//!   "slots": 4,
//!   "backend": "simulated",
//!   "policy": "fair",
//!   "scheduler": { "name": "priority_aging", "params": { "aging_rate": 2.0 } },
//!   "fault": { "name": "retries", "params": { "max_retries": 2 } },
//!   "sinks": [ { "name": "jsonl", "params": { "path": "rows.jsonl" } } ],
//!   "source": { "kind": "poisson", "sessions": 50, "tenants": 8,
//!               "mean_interarrival_secs": 30.0 }
//! }
//! ```

use crate::arrival::{ArrivalStream, OpenLoopProcess, SessionArrival, WorkloadGenerator};
use crate::runner::{StreamBackend, WorkloadConfig, WorkloadOutcome};
use crate::service::{
    admission_policies, AdmissionPolicy, SaturationMode, ServiceConfig, ServiceEngine,
};
use crate::sink::{sinks, ReportSink};
use crate::trace::{CsvTrace, HotTenantTrace, SyntheticTrace};
use entk_core::registry::{faults, schedulers};
use entk_core::{params_required, ComponentSpec, EntkError, Registry};
use serde::{DeError, Deserialize, Serialize};
use serde_json::Value;
use std::sync::OnceLock;

/// Top-level stream specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Master seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Resource sessions run on.
    #[serde(default = "default_resource")]
    pub resource: String,
    /// Concurrent admission slots.
    #[serde(default = "default_slots")]
    pub slots: usize,
    /// Backend: `"simulated"` (default) or `"federated"`.
    #[serde(default = "default_backend")]
    pub backend: String,
    /// Member clusters per session on the federated backend.
    #[serde(default = "default_members")]
    pub members: usize,
    /// Admission policy plugin: `"fifo"` (default), `"fair"`, or an
    /// object with params.
    #[serde(default = "default_policy")]
    pub policy: ComponentSpec,
    /// Fair-share usage half-life in virtual seconds (0 = no decay);
    /// used when the policy's own params leave it unset.
    #[serde(default)]
    pub half_life_secs: f64,
    /// Bound on the pending admission queue (`null` = unbounded).
    #[serde(default)]
    pub max_queue_depth: Option<usize>,
    /// What happens past the bound: `"reject"` (default) or `"defer"`.
    #[serde(default = "default_saturation")]
    pub saturation: String,
    /// `true` restores stream-fatal failure semantics.
    #[serde(default)]
    pub strict: bool,
    /// Per-unit failure-injection probability for every session backend.
    #[serde(default)]
    pub unit_failure_rate: f64,
    /// Batch-scheduler plugin threaded into every session's backend
    /// (`null` keeps the backend's policy default).
    #[serde(default)]
    pub scheduler: Option<ComponentSpec>,
    /// Fault-grid plugin threaded into every session's backend (`null`
    /// means no retries, no watchdog).
    #[serde(default)]
    pub fault: Option<ComponentSpec>,
    /// Report sinks fed as the stream is served (empty = report only).
    #[serde(default)]
    pub sinks: Vec<ComponentSpec>,
    /// Where the arrivals come from.
    pub source: SourceDecl,
}

fn default_seed() -> u64 {
    2016
}
fn default_resource() -> String {
    "xsede.stampede".into()
}
fn default_slots() -> usize {
    4
}
fn default_backend() -> String {
    "simulated".into()
}
fn default_members() -> usize {
    2
}
fn default_policy() -> ComponentSpec {
    ComponentSpec::named("fifo")
}
fn default_saturation() -> String {
    "reject".into()
}

/// A workload-source declaration: a JSON object whose `"kind"` names a
/// registered source plugin; the rest of the object is that plugin's
/// typed params (validated by the factory, not here).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDecl {
    /// Registered source name (`poisson`, `burst`, `synthetic`,
    /// `hot_tenant`, `trace`/`csv`).
    pub kind: String,
    /// The full declaration object, `"kind"` included.
    pub decl: Value,
}

impl SourceDecl {
    /// A declaration assembled from a kind and its params object.
    pub fn new(kind: impl Into<String>, decl: Value) -> Self {
        SourceDecl {
            kind: kind.into(),
            decl,
        }
    }
}

impl Serialize for SourceDecl {
    fn to_value(&self) -> Value {
        self.decl.clone()
    }
}

impl Deserialize for SourceDecl {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| {
            DeError::custom("workload source must be an object with a \"kind\" field".to_string())
        })?;
        let kind = obj.get("kind").and_then(Value::as_str).ok_or_else(|| {
            DeError::custom("workload source needs a string \"kind\" field".to_string())
        })?;
        Ok(SourceDecl {
            kind: kind.to_string(),
            decl: v.clone(),
        })
    }
}

/// Build context of workload-source factories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCtx {
    /// Master seed; every generated source derives from it.
    pub seed: u64,
}

/// Params of the `poisson` source plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PoissonParams {
    /// Sessions to emit.
    sessions: usize,
    /// Tenant population size.
    tenants: u64,
    /// Mean inter-arrival gap, seconds.
    mean_interarrival_secs: f64,
}

/// Params of the `burst` source plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BurstParams {
    /// Sessions to emit.
    sessions: usize,
    /// Tenant population size.
    tenants: u64,
    /// Sessions per burst.
    burst_size: usize,
    /// Mean gap between bursts, seconds.
    mean_gap_secs: f64,
}

/// Params of the `synthetic` and `hot_tenant` source plugins.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MixtureParams {
    /// Sessions to emit.
    sessions: usize,
    /// Tenant population size.
    tenants: u64,
}

/// Params of the `trace` (alias `csv`) source plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceParams {
    /// Path to the trace file.
    path: String,
}

/// The workload-source registry: every `"kind"` a spec's `"source"`
/// object can name. Factories open the source as a lazy pull stream.
pub fn sources() -> &'static Registry<Box<dyn ArrivalStream>, SourceCtx> {
    static TABLE: OnceLock<Registry<Box<dyn ArrivalStream>, SourceCtx>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut r = Registry::new("workload source");
        r.register("poisson", |ctx: &SourceCtx, params| {
            let p: PoissonParams = params_required("workload source", "poisson", params)?;
            OpenLoopProcess::poisson(ctx.seed, p.sessions, p.tenants, p.mean_interarrival_secs)
                .stream()
        });
        r.register("burst", |ctx: &SourceCtx, params| {
            let p: BurstParams = params_required("workload source", "burst", params)?;
            OpenLoopProcess::burst(
                ctx.seed,
                p.sessions,
                p.tenants,
                p.burst_size,
                p.mean_gap_secs,
            )
            .stream()
        });
        r.register("synthetic", |ctx: &SourceCtx, params| {
            let p: MixtureParams = params_required("workload source", "synthetic", params)?;
            SyntheticTrace::new(ctx.seed, p.sessions, p.tenants).stream()
        });
        r.register("hot_tenant", |ctx: &SourceCtx, params| {
            let p: MixtureParams = params_required("workload source", "hot_tenant", params)?;
            HotTenantTrace::new(ctx.seed, p.sessions, p.tenants).stream()
        });
        for name in ["trace", "csv"] {
            r.register(name, move |_: &SourceCtx, params| {
                let p: TraceParams = params_required("workload source", name, params)?;
                CsvTrace::from_path(&p.path)?.stream()
            });
        }
        r
    })
}

/// 1-based line of the first occurrence of `"needle"` (quoted) in the
/// spec text — good enough to point at the offending key or name.
fn line_of(text: &str, needle: &str) -> Option<usize> {
    let pos = text.find(&format!("\"{needle}\""))?;
    Some(text[..pos].bytes().filter(|&b| b == b'\n').count() + 1)
}

/// Prefixes a usage message with the spec line the `needle` sits on.
fn usage_at(text: &str, needle: &str, err: EntkError) -> EntkError {
    match (line_of(text, needle), err) {
        (Some(line), EntkError::Usage(msg)) => {
            EntkError::Usage(format!("workload spec line {line}: {msg}"))
        }
        (_, err) => err,
    }
}

impl StreamSpec {
    /// Parses and validates a spec from JSON text: unknown top-level keys
    /// and unregistered component names fail as [`EntkError::Usage`] with
    /// the offending line number and the valid alternatives. This is the
    /// one loader behind `entk run --workload` and `entk serve`.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        const KNOWN: [&str; 15] = [
            "seed",
            "resource",
            "slots",
            "backend",
            "members",
            "policy",
            "half_life_secs",
            "max_queue_depth",
            "saturation",
            "strict",
            "unit_failure_rate",
            "scheduler",
            "fault",
            "sinks",
            "source",
        ];
        let value: Value = serde_json::from_str(text)
            .map_err(|e| EntkError::Usage(format!("bad workload spec: {e}")))?;
        let obj = value.as_object().ok_or_else(|| {
            EntkError::Usage("bad workload spec: expected a JSON object".to_string())
        })?;
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(usage_at(
                    text,
                    key,
                    EntkError::Usage(format!(
                        "unknown key {key:?} (known keys: {})",
                        KNOWN.join(", ")
                    )),
                ));
            }
        }
        let spec: StreamSpec = serde_json::from_value(&value)
            .map_err(|e| EntkError::Usage(format!("bad workload spec: {e}")))?;
        spec.check_names(text)?;
        Ok(spec)
    }

    /// Rejects unregistered component names up front, pointing at the
    /// spec line that names them.
    fn check_names(&self, text: &str) -> Result<(), EntkError> {
        let policies = admission_policies();
        if !policies.contains(&self.policy.name) {
            return Err(usage_at(
                text,
                &self.policy.name,
                policies.unknown(&self.policy.name),
            ));
        }
        if let Some(s) = &self.scheduler {
            if !schedulers().contains(&s.name) {
                return Err(usage_at(text, &s.name, schedulers().unknown(&s.name)));
            }
        }
        if let Some(f) = &self.fault {
            if !faults().contains(&f.name) {
                return Err(usage_at(text, &f.name, faults().unknown(&f.name)));
            }
        }
        for sink in &self.sinks {
            if !sinks().contains(&sink.name) {
                return Err(usage_at(text, &sink.name, sinks().unknown(&sink.name)));
            }
        }
        if !sources().contains(&self.source.kind) {
            return Err(usage_at(
                text,
                &self.source.kind,
                sources().unknown(&self.source.kind),
            ));
        }
        Ok(())
    }

    /// Opens the spec's arrival source as a lazy pull stream (without
    /// serving or materializing it).
    pub fn source_stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        sources().build(
            &ComponentSpec::with_params(self.source.kind.clone(), self.source.decl.clone()),
            &SourceCtx { seed: self.seed },
        )
    }

    /// Generates the spec's arrivals (without serving them).
    pub fn arrivals(&self) -> Result<Vec<SessionArrival>, EntkError> {
        let mut stream = self.source_stream()?;
        let mut out = Vec::with_capacity(stream.remaining_hint().unwrap_or(0));
        while let Some(row) = stream.next_arrival()? {
            out.push(row);
        }
        Ok(out)
    }

    /// Compiles the backend/slots/seed fields — plus the scheduler and
    /// fault plugins — into a runner config. Plugin params are built once
    /// here so a bad params block fails before any session runs.
    pub fn config(&self) -> Result<WorkloadConfig, EntkError> {
        let backend = match self.backend.as_str() {
            "simulated" => StreamBackend::Simulated,
            "federated" => StreamBackend::Federated {
                members: self.members,
            },
            other => {
                return Err(EntkError::Usage(format!(
                    "unknown backend {other:?} (use \"simulated\" or \"federated\")"
                )))
            }
        };
        if let Some(spec) = &self.scheduler {
            schedulers().build(spec, &())?;
        }
        let fault = match &self.fault {
            Some(spec) => faults().build(spec, &())?,
            None => entk_core::FaultConfig::default(),
        };
        Ok(WorkloadConfig {
            seed: self.seed,
            resource: self.resource.clone(),
            slots: self.slots,
            backend,
            unit_failure_rate: self.unit_failure_rate,
            scheduler: self.scheduler.clone(),
            fault,
        })
    }

    /// Compiles the full service configuration: the runner config plus
    /// admission policy, backpressure, and failure-strictness. A
    /// fair-share policy whose params leave the half-life at zero takes
    /// the spec's top-level `half_life_secs` (the pre-registry shape).
    pub fn service_config(&self) -> Result<ServiceConfig, EntkError> {
        let mut policy = admission_policies().build(&self.policy, &())?;
        if let AdmissionPolicy::FairShare { half_life_secs } = &mut policy {
            if *half_life_secs == 0.0 {
                *half_life_secs = self.half_life_secs;
            }
        }
        Ok(ServiceConfig {
            stream: self.config()?,
            policy,
            max_queue_depth: self.max_queue_depth,
            saturation: SaturationMode::parse(&self.saturation)?,
            strict: self.strict,
        })
    }

    /// Builds the spec's report sinks (opens their output files).
    pub fn build_sinks(&self) -> Result<Vec<Box<dyn ReportSink>>, EntkError> {
        self.sinks.iter().map(|s| sinks().build(s, &())).collect()
    }

    /// Generates and serves the stream under the spec's full service
    /// configuration. Declared sinks are not driven here — callers that
    /// want them feed the outcome through [`crate::sink::dispatch`].
    pub fn run(&self) -> Result<WorkloadOutcome, EntkError> {
        let arrivals = self.arrivals()?;
        ServiceEngine::new(self.service_config()?, &arrivals)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_runs_a_poisson_spec() {
        let text = r#"{
            "seed": 7,
            "slots": 2,
            "source": { "kind": "poisson", "sessions": 8, "tenants": 3,
                        "mean_interarrival_secs": 60.0 }
        }"#;
        let spec = StreamSpec::from_json(text).unwrap();
        assert_eq!(spec.backend, "simulated");
        assert_eq!(spec.resource, "xsede.stampede");
        assert_eq!(spec.policy, ComponentSpec::named("fifo"));
        let out = spec.run().unwrap();
        assert_eq!(out.report.sessions, 8);
        assert!(out.report.max_cross_check_err_secs <= 1e-6);
    }

    #[test]
    fn synthetic_spec_runs_federated() {
        let text = r#"{
            "seed": 3,
            "backend": "federated",
            "members": 2,
            "slots": 2,
            "source": { "kind": "synthetic", "sessions": 6, "tenants": 2 }
        }"#;
        let out = StreamSpec::from_json(text).unwrap().run().unwrap();
        assert_eq!(out.report.backend, "federated:2");
        assert_eq!(out.report.sessions, 6);
    }

    #[test]
    fn bad_specs_are_usage_errors() {
        assert!(StreamSpec::from_json("{}").is_err());
        assert!(StreamSpec::from_json("not json").is_err());
        let bad_backend = r#"{
            "backend": "cloud",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let spec = StreamSpec::from_json(bad_backend).unwrap();
        assert!(matches!(spec.run(), Err(EntkError::Usage(_))));
        let missing_trace = r#"{
            "source": { "kind": "trace", "path": "/nonexistent/trace.csv" }
        }"#;
        assert!(StreamSpec::from_json(missing_trace).unwrap().run().is_err());
    }

    #[test]
    fn unknown_keys_fail_with_their_line_number() {
        let text = r#"{
            "seed": 7,
            "polcy": "fifo",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let err = StreamSpec::from_json(text).expect_err("typoed key");
        let msg = err.to_string();
        assert!(msg.contains("workload spec line 3"), "{msg}");
        assert!(msg.contains("unknown key \"polcy\""), "{msg}");
        assert!(msg.contains("policy"), "{msg}");
    }

    #[test]
    fn unknown_component_names_fail_with_line_and_alternatives() {
        let text = r#"{
            "policy": "priority",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let err = StreamSpec::from_json(text).expect_err("unregistered policy");
        let msg = err.to_string();
        assert!(msg.contains("workload spec line 2"), "{msg}");
        assert!(msg.contains("unknown admission policy"), "{msg}");
        assert!(msg.contains("fifo") && msg.contains("fair"), "{msg}");

        let text = r#"{
            "scheduler": "sjw",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let msg = StreamSpec::from_json(text).unwrap_err().to_string();
        assert!(msg.contains("unknown scheduler \"sjw\""), "{msg}");
        assert!(msg.contains("sjf"), "{msg}");

        let text = r#"{
            "source": { "kind": "cloud", "sessions": 4, "tenants": 2 }
        }"#;
        let msg = StreamSpec::from_json(text).unwrap_err().to_string();
        assert!(msg.contains("unknown workload source \"cloud\""), "{msg}");
        assert!(msg.contains("hot_tenant"), "{msg}");
    }

    #[test]
    fn spec_selects_scheduler_fault_and_sinks_from_registries() {
        let text = r#"{
            "seed": 11,
            "slots": 2,
            "policy": "fair",
            "half_life_secs": 600.0,
            "scheduler": { "name": "priority_aging",
                           "params": { "aging_rate": 2.0, "core_penalty": 1.0 } },
            "fault": { "name": "retries", "params": { "max_retries": 2 } },
            "source": { "kind": "hot_tenant", "sessions": 6, "tenants": 3 }
        }"#;
        let spec = StreamSpec::from_json(text).unwrap();
        let service = spec.service_config().unwrap();
        assert_eq!(
            service.policy,
            AdmissionPolicy::FairShare {
                half_life_secs: 600.0
            }
        );
        assert_eq!(service.stream.fault.max_retries, 2);
        assert_eq!(
            service.stream.scheduler.as_ref().map(|s| s.name.as_str()),
            Some("priority_aging")
        );
        let out = spec.run().unwrap();
        assert_eq!(out.report.sessions, 6);
        assert_eq!(out.report.policy, "fair-share");
    }

    #[test]
    fn scheduler_plugin_changes_the_stream_trajectory_deterministically() {
        let base = r#"{
            "seed": 5,
            "slots": 2,
            "source": { "kind": "synthetic", "sessions": 8, "tenants": 3 }
        }"#;
        let with_sjf = r#"{
            "seed": 5,
            "slots": 2,
            "scheduler": "sjf",
            "source": { "kind": "synthetic", "sessions": 8, "tenants": 3 }
        }"#;
        let a = StreamSpec::from_json(base).unwrap().run().unwrap();
        let b = StreamSpec::from_json(with_sjf).unwrap().run().unwrap();
        let b2 = StreamSpec::from_json(with_sjf).unwrap().run().unwrap();
        assert_eq!(b.jsonl, b2.jsonl, "plugin runs replay byte-identically");
        assert_eq!(a.report.sessions, b.report.sessions);
    }
}
