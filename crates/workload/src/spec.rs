//! JSON stream specifications: declare a workload source (arrival process
//! or trace) and the shared backend it is served on; used by
//! `entk run --workload spec.json`.
//!
//! ```json
//! {
//!   "seed": 42,
//!   "resource": "xsede.stampede",
//!   "slots": 4,
//!   "backend": "simulated",
//!   "source": { "kind": "poisson", "sessions": 50, "tenants": 8,
//!               "mean_interarrival_secs": 30.0 }
//! }
//! ```

use crate::arrival::{OpenLoopProcess, SessionArrival, WorkloadGenerator};
use crate::runner::{serve, StreamBackend, WorkloadConfig, WorkloadOutcome};
use crate::trace::{CsvTrace, SyntheticTrace};
use entk_core::EntkError;
use serde::{Deserialize, Serialize};

/// Top-level stream specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Master seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Resource sessions run on.
    #[serde(default = "default_resource")]
    pub resource: String,
    /// Concurrent admission slots.
    #[serde(default = "default_slots")]
    pub slots: usize,
    /// Backend: `"simulated"` (default) or `"federated"`.
    #[serde(default = "default_backend")]
    pub backend: String,
    /// Member clusters per session on the federated backend.
    #[serde(default = "default_members")]
    pub members: usize,
    /// Where the arrivals come from.
    pub source: SourceSpec,
}

fn default_seed() -> u64 {
    2016
}
fn default_resource() -> String {
    "xsede.stampede".into()
}
fn default_slots() -> usize {
    4
}
fn default_backend() -> String {
    "simulated".into()
}
fn default_members() -> usize {
    2
}

/// The workload sources a spec may declare.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SourceSpec {
    /// Seeded Poisson arrival process.
    Poisson {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
        /// Mean inter-arrival gap, seconds.
        mean_interarrival_secs: f64,
    },
    /// Seeded bursty arrival process.
    Burst {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
        /// Sessions per burst.
        burst_size: usize,
        /// Mean gap between bursts, seconds.
        mean_gap_secs: f64,
    },
    /// The in-repo synthetic trace mixture.
    Synthetic {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
    },
    /// A CSV trace file in the canonical schema.
    Trace {
        /// Path to the trace file.
        path: String,
    },
}

impl StreamSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        serde_json::from_str(text).map_err(|e| EntkError::Usage(format!("bad workload spec: {e}")))
    }

    /// Generates the spec's arrivals (without serving them).
    pub fn arrivals(&self) -> Result<Vec<SessionArrival>, EntkError> {
        match &self.source {
            SourceSpec::Poisson {
                sessions,
                tenants,
                mean_interarrival_secs,
            } => OpenLoopProcess::poisson(self.seed, *sessions, *tenants, *mean_interarrival_secs)
                .generate(),
            SourceSpec::Burst {
                sessions,
                tenants,
                burst_size,
                mean_gap_secs,
            } => {
                OpenLoopProcess::burst(self.seed, *sessions, *tenants, *burst_size, *mean_gap_secs)
                    .generate()
            }
            SourceSpec::Synthetic { sessions, tenants } => {
                SyntheticTrace::new(self.seed, *sessions, *tenants).generate()
            }
            SourceSpec::Trace { path } => CsvTrace::from_path(path)?.generate(),
        }
    }

    /// Compiles the backend/slots/seed fields into a runner config.
    pub fn config(&self) -> Result<WorkloadConfig, EntkError> {
        let backend = match self.backend.as_str() {
            "simulated" => StreamBackend::Simulated,
            "federated" => StreamBackend::Federated {
                members: self.members,
            },
            other => {
                return Err(EntkError::Usage(format!(
                    "unknown backend {other:?} (use \"simulated\" or \"federated\")"
                )))
            }
        };
        Ok(WorkloadConfig {
            seed: self.seed,
            resource: self.resource.clone(),
            slots: self.slots,
            backend,
        })
    }

    /// Generates and serves the stream.
    pub fn run(&self) -> Result<WorkloadOutcome, EntkError> {
        let arrivals = self.arrivals()?;
        serve(&self.config()?, &arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_runs_a_poisson_spec() {
        let text = r#"{
            "seed": 7,
            "slots": 2,
            "source": { "kind": "poisson", "sessions": 8, "tenants": 3,
                        "mean_interarrival_secs": 60.0 }
        }"#;
        let spec = StreamSpec::from_json(text).unwrap();
        assert_eq!(spec.backend, "simulated");
        assert_eq!(spec.resource, "xsede.stampede");
        let out = spec.run().unwrap();
        assert_eq!(out.report.sessions, 8);
        assert!(out.report.max_cross_check_err_secs <= 1e-6);
    }

    #[test]
    fn synthetic_spec_runs_federated() {
        let text = r#"{
            "seed": 3,
            "backend": "federated",
            "members": 2,
            "slots": 2,
            "source": { "kind": "synthetic", "sessions": 6, "tenants": 2 }
        }"#;
        let out = StreamSpec::from_json(text).unwrap().run().unwrap();
        assert_eq!(out.report.backend, "federated:2");
        assert_eq!(out.report.sessions, 6);
    }

    #[test]
    fn bad_specs_are_usage_errors() {
        assert!(StreamSpec::from_json("{}").is_err());
        assert!(StreamSpec::from_json("not json").is_err());
        let bad_backend = r#"{
            "backend": "cloud",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let spec = StreamSpec::from_json(bad_backend).unwrap();
        assert!(matches!(spec.run(), Err(EntkError::Usage(_))));
        let missing_trace = r#"{
            "source": { "kind": "trace", "path": "/nonexistent/trace.csv" }
        }"#;
        assert!(StreamSpec::from_json(missing_trace).unwrap().run().is_err());
    }
}
