//! JSON stream specifications: declare a workload source (arrival process
//! or trace) and the shared backend it is served on; used by
//! `entk run --workload spec.json`.
//!
//! ```json
//! {
//!   "seed": 42,
//!   "resource": "xsede.stampede",
//!   "slots": 4,
//!   "backend": "simulated",
//!   "source": { "kind": "poisson", "sessions": 50, "tenants": 8,
//!               "mean_interarrival_secs": 30.0 }
//! }
//! ```

use crate::arrival::{
    ArrivalStream, OpenLoopProcess, SessionArrival, WorkloadGenerator,
};
use crate::runner::{StreamBackend, WorkloadConfig, WorkloadOutcome};
use crate::service::{AdmissionPolicy, SaturationMode, ServiceConfig, ServiceEngine};
use crate::trace::{CsvTrace, SyntheticTrace};
use entk_core::EntkError;
use serde::{Deserialize, Serialize};

/// Top-level stream specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Master seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Resource sessions run on.
    #[serde(default = "default_resource")]
    pub resource: String,
    /// Concurrent admission slots.
    #[serde(default = "default_slots")]
    pub slots: usize,
    /// Backend: `"simulated"` (default) or `"federated"`.
    #[serde(default = "default_backend")]
    pub backend: String,
    /// Member clusters per session on the federated backend.
    #[serde(default = "default_members")]
    pub members: usize,
    /// Admission policy: `"fifo"` (default) or `"fair"`.
    #[serde(default = "default_policy")]
    pub policy: String,
    /// Fair-share usage half-life in virtual seconds (0 = no decay).
    #[serde(default)]
    pub half_life_secs: f64,
    /// Bound on the pending admission queue (`null` = unbounded).
    #[serde(default)]
    pub max_queue_depth: Option<usize>,
    /// What happens past the bound: `"reject"` (default) or `"defer"`.
    #[serde(default = "default_saturation")]
    pub saturation: String,
    /// `true` restores stream-fatal failure semantics.
    #[serde(default)]
    pub strict: bool,
    /// Per-unit failure-injection probability for every session backend.
    #[serde(default)]
    pub unit_failure_rate: f64,
    /// Where the arrivals come from.
    pub source: SourceSpec,
}

fn default_seed() -> u64 {
    2016
}
fn default_resource() -> String {
    "xsede.stampede".into()
}
fn default_slots() -> usize {
    4
}
fn default_backend() -> String {
    "simulated".into()
}
fn default_members() -> usize {
    2
}
fn default_policy() -> String {
    "fifo".into()
}
fn default_saturation() -> String {
    "reject".into()
}

/// The workload sources a spec may declare.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SourceSpec {
    /// Seeded Poisson arrival process.
    Poisson {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
        /// Mean inter-arrival gap, seconds.
        mean_interarrival_secs: f64,
    },
    /// Seeded bursty arrival process.
    Burst {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
        /// Sessions per burst.
        burst_size: usize,
        /// Mean gap between bursts, seconds.
        mean_gap_secs: f64,
    },
    /// The in-repo synthetic trace mixture.
    Synthetic {
        /// Sessions to emit.
        sessions: usize,
        /// Tenant population size.
        tenants: u64,
    },
    /// A CSV trace file in the canonical schema.
    Trace {
        /// Path to the trace file.
        path: String,
    },
}

impl StreamSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        serde_json::from_str(text).map_err(|e| EntkError::Usage(format!("bad workload spec: {e}")))
    }

    /// Opens the spec's arrival source as a lazy pull stream (without
    /// serving or materializing it).
    pub fn source_stream(&self) -> Result<Box<dyn ArrivalStream>, EntkError> {
        match &self.source {
            SourceSpec::Poisson {
                sessions,
                tenants,
                mean_interarrival_secs,
            } => OpenLoopProcess::poisson(self.seed, *sessions, *tenants, *mean_interarrival_secs)
                .stream(),
            SourceSpec::Burst {
                sessions,
                tenants,
                burst_size,
                mean_gap_secs,
            } => {
                OpenLoopProcess::burst(self.seed, *sessions, *tenants, *burst_size, *mean_gap_secs)
                    .stream()
            }
            SourceSpec::Synthetic { sessions, tenants } => {
                SyntheticTrace::new(self.seed, *sessions, *tenants).stream()
            }
            SourceSpec::Trace { path } => CsvTrace::from_path(path)?.stream(),
        }
    }

    /// Generates the spec's arrivals (without serving them).
    pub fn arrivals(&self) -> Result<Vec<SessionArrival>, EntkError> {
        let mut stream = self.source_stream()?;
        let mut out = Vec::with_capacity(stream.remaining_hint().unwrap_or(0));
        while let Some(row) = stream.next_arrival()? {
            out.push(row);
        }
        Ok(out)
    }

    /// Compiles the backend/slots/seed fields into a runner config.
    pub fn config(&self) -> Result<WorkloadConfig, EntkError> {
        let backend = match self.backend.as_str() {
            "simulated" => StreamBackend::Simulated,
            "federated" => StreamBackend::Federated {
                members: self.members,
            },
            other => {
                return Err(EntkError::Usage(format!(
                    "unknown backend {other:?} (use \"simulated\" or \"federated\")"
                )))
            }
        };
        Ok(WorkloadConfig {
            seed: self.seed,
            resource: self.resource.clone(),
            slots: self.slots,
            backend,
            unit_failure_rate: self.unit_failure_rate,
        })
    }

    /// Compiles the full service configuration: the runner config plus
    /// admission policy, backpressure, and failure-strictness.
    pub fn service_config(&self) -> Result<ServiceConfig, EntkError> {
        let policy = match AdmissionPolicy::parse(&self.policy)? {
            AdmissionPolicy::Fifo => AdmissionPolicy::Fifo,
            AdmissionPolicy::FairShare { .. } => AdmissionPolicy::FairShare {
                half_life_secs: self.half_life_secs,
            },
        };
        Ok(ServiceConfig {
            stream: self.config()?,
            policy,
            max_queue_depth: self.max_queue_depth,
            saturation: SaturationMode::parse(&self.saturation)?,
            strict: self.strict,
        })
    }

    /// Generates and serves the stream under the spec's full service
    /// configuration.
    pub fn run(&self) -> Result<WorkloadOutcome, EntkError> {
        let arrivals = self.arrivals()?;
        ServiceEngine::new(self.service_config()?, &arrivals)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_runs_a_poisson_spec() {
        let text = r#"{
            "seed": 7,
            "slots": 2,
            "source": { "kind": "poisson", "sessions": 8, "tenants": 3,
                        "mean_interarrival_secs": 60.0 }
        }"#;
        let spec = StreamSpec::from_json(text).unwrap();
        assert_eq!(spec.backend, "simulated");
        assert_eq!(spec.resource, "xsede.stampede");
        let out = spec.run().unwrap();
        assert_eq!(out.report.sessions, 8);
        assert!(out.report.max_cross_check_err_secs <= 1e-6);
    }

    #[test]
    fn synthetic_spec_runs_federated() {
        let text = r#"{
            "seed": 3,
            "backend": "federated",
            "members": 2,
            "slots": 2,
            "source": { "kind": "synthetic", "sessions": 6, "tenants": 2 }
        }"#;
        let out = StreamSpec::from_json(text).unwrap().run().unwrap();
        assert_eq!(out.report.backend, "federated:2");
        assert_eq!(out.report.sessions, 6);
    }

    #[test]
    fn bad_specs_are_usage_errors() {
        assert!(StreamSpec::from_json("{}").is_err());
        assert!(StreamSpec::from_json("not json").is_err());
        let bad_backend = r#"{
            "backend": "cloud",
            "source": { "kind": "synthetic", "sessions": 4, "tenants": 2 }
        }"#;
        let spec = StreamSpec::from_json(bad_backend).unwrap();
        assert!(matches!(spec.run(), Err(EntkError::Usage(_))));
        let missing_trace = r#"{
            "source": { "kind": "trace", "path": "/nonexistent/trace.csv" }
        }"#;
        assert!(StreamSpec::from_json(missing_trace).unwrap().run().is_err());
    }
}
