//! The multi-tenant session service: a live, event-driven admission loop
//! over pluggable policies, with bounded-queue backpressure and
//! checkpoint/restore at arrival boundaries.
//!
//! ## Model
//!
//! [`ServiceEngine`] replaces the precomputed-FIFO-only recursion the
//! stream runner started with. The engine is a discrete-event loop over
//! two event sources — the arrival cursor and the in-flight completion
//! heap — with the documented tie order (a completion at `t` is applied
//! before an arrival at `t`, which is applied before any admission at
//! `t`, so a freed slot is always visible to a session admitted at the
//! same instant). After every event the engine runs an admission step:
//! while a slot is free and sessions are pending, the configured
//! [`AdmissionPolicy`] picks the next session.
//!
//! * [`AdmissionPolicy::Fifo`] — arrival order; byte-identical to the
//!   original `serve()` recursion (property-tested against a reference
//!   implementation).
//! * [`AdmissionPolicy::FairShare`] — the per-tenant usage-accounting
//!   policy lifted from `entk-cluster`'s `FairShareScheduler`
//!   ([`entk_cluster::UsageLedger`]) to session granularity: the pending
//!   session whose tenant has the least decayed core-second usage is
//!   admitted first (ties: arrival order), and the tenant is charged
//!   cores × service-time on admission. A hot tenant's burst therefore
//!   queues behind light tenants instead of starving them.
//!
//! ## Failure semantics
//!
//! A session whose backend run fails, or that degrades to a partial
//! result, is *not* stream-fatal: it is recorded with
//! `status: failed | partial` on its [`SessionRecord`] and the stream
//! continues. `strict: true` restores the original behavior (first
//! failure or degradation aborts the stream with the underlying error).
//!
//! ## Backpressure
//!
//! `max_queue_depth` bounds the pending queue. An arrival past the bound
//! is either **rejected** — recorded with `status: rejected` and a typed
//! [`EntkError::Saturated`] outcome on the record, never stream-fatal —
//! or **deferred** into an overflow buffer that feeds the bounded window
//! as admissions drain it (the session is eventually served; its latency
//! still counts from its true arrival).
//!
//! ## Checkpoint / restore
//!
//! [`ServiceEngine::checkpoint`] serializes the complete admission state
//! at an arrival boundary: the pending and deferred queues, in-flight
//! slot occupancy (finish instants), per-tenant usage balances with their
//! decay instant, the arrival cursor, the emitted-record cursor, and the
//! per-session seed cursor (the master seed — sub-seeds are a pure
//! splitmix64 function of it and the session index, so the cursor is just
//! the next index). [`ServiceEngine::restore`] rebuilds the engine from
//! the checkpoint, re-evaluates only the sessions that still need service
//! times (pending, deferred, and not-yet-arrived — completed sessions are
//! carried as finalized records), and replays to a byte-identical
//! `WORKLOAD.jsonl` suffix: prefix-emitted-before-the-kill + suffix is
//! byte-identical to the uninterrupted stream, including its fingerprint.
//!
//! Determinism argument: every admission decision is a pure function of
//! (config, arrivals, per-session service times), service times are pure
//! functions of (config, arrival, splitmix64(seed, index)), and the event
//! order is totally ordered by (time, kind, session index). A checkpoint
//! carries exactly the loop state, so the resumed trajectory is the same
//! trajectory.

use crate::arrival::SessionArrival;
use crate::runner::{
    fnv64, record_depth_gauges, render_record, SessionRecord, SessionStatus, StreamBackend,
    TenantLatency, WorkloadConfig, WorkloadOutcome, WorkloadReport, IN_SERVICE_GAUGE,
    QUEUE_DEPTH_GAUGE,
};
use crate::trace::render_trace;
use entk_core::prelude::*;
use entk_core::EntkError;
use entk_sim::{Metrics, SimDuration, SimTime, Summary};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// How the service picks the next pending session for a free slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Arrival order (the default; matches the original runner).
    Fifo,
    /// Least decayed per-tenant core-second usage first (ties: arrival
    /// order) — the cluster fair-share policy at session granularity.
    FairShare {
        /// Usage decay half-life in virtual seconds (0 = no decay).
        half_life_secs: f64,
    },
}

impl AdmissionPolicy {
    /// Stable label used in reports, checkpoints, and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::FairShare { .. } => "fair-share",
        }
    }

    /// Parses a policy name (`fifo`, `fair`, `fair-share`).
    pub fn parse(s: &str) -> Result<Self, EntkError> {
        match s {
            "fifo" => Ok(AdmissionPolicy::Fifo),
            "fair" | "fair-share" => Ok(AdmissionPolicy::FairShare {
                half_life_secs: 0.0,
            }),
            other => Err(EntkError::Usage(format!(
                "unknown admission policy {other:?} (use \"fifo\" or \"fair\")"
            ))),
        }
    }

    fn half_life_secs(self) -> f64 {
        match self {
            AdmissionPolicy::Fifo => 0.0,
            AdmissionPolicy::FairShare { half_life_secs } => half_life_secs,
        }
    }
}

/// What happens to an arrival when the pending queue is at its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationMode {
    /// Record the session as `rejected` with a typed
    /// [`EntkError::Saturated`] outcome and drop it.
    Reject,
    /// Park the session in an overflow buffer; it enters the bounded
    /// window (and becomes admissible) as the queue drains.
    Defer,
}

impl SaturationMode {
    /// Stable label used in checkpoints and specs.
    pub fn label(self) -> &'static str {
        match self {
            SaturationMode::Reject => "reject",
            SaturationMode::Defer => "defer",
        }
    }

    /// Parses a saturation mode name.
    pub fn parse(s: &str) -> Result<Self, EntkError> {
        match s {
            "reject" => Ok(SaturationMode::Reject),
            "defer" => Ok(SaturationMode::Defer),
            other => Err(EntkError::Usage(format!(
                "unknown saturation mode {other:?} (use \"reject\" or \"defer\")"
            ))),
        }
    }
}

/// Full configuration of the session service: the stream config plus the
/// admission policy, backpressure bound, and failure-strictness.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Seed / resource / slots / backend of the underlying stream.
    pub stream: WorkloadConfig,
    /// Admission policy over the pending queue.
    pub policy: AdmissionPolicy,
    /// Bound on the pending queue (`None` = unbounded).
    pub max_queue_depth: Option<usize>,
    /// What happens to arrivals past the bound.
    pub saturation: SaturationMode,
    /// `true` restores the original stream-fatal failure semantics: the
    /// first failed or degraded session aborts the whole stream.
    pub strict: bool,
}

impl ServiceConfig {
    /// FIFO admission with unbounded queue and lenient failures — the
    /// semantics of the original `serve()` on clean streams.
    pub fn fifo(stream: WorkloadConfig) -> Self {
        ServiceConfig {
            stream,
            policy: AdmissionPolicy::Fifo,
            max_queue_depth: None,
            saturation: SaturationMode::Reject,
            strict: false,
        }
    }

    /// Fair-share admission with the given usage half-life.
    pub fn fair_share(stream: WorkloadConfig, half_life_secs: f64) -> Self {
        ServiceConfig {
            policy: AdmissionPolicy::FairShare { half_life_secs },
            ..ServiceConfig::fifo(stream)
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::fifo(WorkloadConfig::default())
    }
}

/// splitmix64-style per-session seed derivation: decorrelates sessions
/// without consuming master-RNG draws, so inserting a session never
/// perturbs its neighbours. The "RNG sub-seed cursor" of a checkpoint is
/// just the master seed plus the next session index — this function is
/// pure.
pub fn session_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Service-time evaluation result of one session, before stream queueing.
#[derive(Debug, Clone)]
pub(crate) struct SessionService {
    pub(crate) status: SessionStatus,
    pub(crate) ttc: SimDuration,
    pub(crate) tasks: usize,
    pub(crate) events: u64,
    pub(crate) trace_fp: u64,
    pub(crate) cc_err: f64,
    pub(crate) error: Option<EntkError>,
}

/// Evaluates one session's service on its own virtual clock. Per-session
/// problems — a backend error or a degraded (partial) report — are folded
/// into the returned status, never propagated: the stream must survive
/// individual sessions.
fn evaluate_session(
    config: &WorkloadConfig,
    index: usize,
    arrival: &SessionArrival,
) -> SessionService {
    let failed = |e: EntkError| SessionService {
        status: SessionStatus::Failed,
        ttc: SimDuration::ZERO,
        tasks: 0,
        events: 0,
        trace_fp: 0,
        cc_err: 0.0,
        error: Some(e),
    };
    let mut pattern = match arrival.build_pattern() {
        Ok(p) => p,
        Err(e) => return failed(e),
    };
    let walltime = SimDuration::from_secs(10_000_000);
    let seed = session_seed(config.seed, index);
    let run = match config.backend {
        StreamBackend::Simulated => {
            let rc = ResourceConfig::new(config.resource.clone(), arrival.cores, walltime);
            let sim = SimulatedConfig {
                seed,
                unit_failure_rate: config.unit_failure_rate,
                ..Default::default()
            };
            run_simulated_traced(rc, sim, pattern.as_mut())
        }
        StreamBackend::Federated { members } => {
            let fed = FederatedConfig {
                seed,
                clusters: (0..members)
                    .map(|_| ClusterSpec {
                        unit_failure_rate: config.unit_failure_rate,
                        ..ClusterSpec::new(config.resource.clone(), arrival.cores, walltime)
                    })
                    .collect(),
                ..FederatedConfig::default()
            };
            run_federated_traced(fed, pattern.as_mut())
        }
    };
    let (report, telemetry) = match run {
        Ok(out) => out,
        Err(e) => return failed(e),
    };
    let cc = cross_check(&report, &telemetry.tracer);
    SessionService {
        status: if report.partial {
            SessionStatus::Partial
        } else {
            SessionStatus::Ok
        },
        ttc: report.ttc,
        tasks: report.task_count(),
        events: report.events,
        trace_fp: fnv64(telemetry.tracer.to_jsonl().as_bytes()),
        cc_err: cc.max_abs_error_secs,
        error: None,
    }
}

/// One fair-share admission decision, exposed for property tests: the
/// fairness invariant is `admitted_usage <= min_waiting_usage` at every
/// decision (a tenant over its share is never admitted while a tenant
/// under its share waits).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSample {
    /// Admitted session index.
    pub session: usize,
    /// Admitted session's tenant.
    pub tenant: u64,
    /// The admitted tenant's decayed usage at the decision instant.
    pub admitted_usage: f64,
    /// Smallest decayed usage among tenants still waiting after the pick
    /// (`None` when the pick emptied the queue).
    pub min_waiting_usage: Option<f64>,
}

/// One in-flight slot in a checkpoint: the session and when its slot
/// frees. The start instant is already on the session's finalized record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightSlot {
    /// Session occupying the slot.
    pub session: usize,
    /// Instant the slot frees, in microseconds.
    pub finish_us: u64,
}

/// A serialized arrival-boundary snapshot of the service's admission
/// state. JSON via [`ServiceCheckpoint::to_json`] /
/// [`ServiceCheckpoint::from_json`]; integrity-checked on restore against
/// the config and the arrival trace fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Checkpoint format version (1).
    pub version: u32,
    /// Master seed (the RNG sub-seed cursor together with `next_arrival`).
    pub seed: u64,
    /// Resource label of the stream config.
    pub resource: String,
    /// Admission slots.
    pub slots: usize,
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Admission policy label.
    pub policy: String,
    /// Fair-share usage half-life, seconds.
    pub half_life_secs: f64,
    /// Pending-queue bound (`None` = unbounded).
    pub max_queue_depth: Option<usize>,
    /// Saturation mode label.
    pub saturation: String,
    /// Strict failure semantics flag.
    pub strict: bool,
    /// Per-unit failure-injection rate of the stream config.
    pub unit_failure_rate: f64,
    /// FNV-1a 64 fingerprint of the rendered arrival trace, so a
    /// checkpoint cannot silently resume against a different stream.
    pub arrivals_fp: String,
    /// Virtual clock at the boundary, microseconds.
    pub clock_us: u64,
    /// Arrivals ingested so far (the next arrival index).
    pub next_arrival: usize,
    /// Records already emitted to the stream JSONL (the suffix a resumed
    /// service produces starts here).
    pub emitted: usize,
    /// Arrived-but-not-admitted sessions, in queue order.
    pub pending: Vec<usize>,
    /// Overflow sessions deferred past the queue bound, in arrival order.
    pub deferred: Vec<usize>,
    /// Occupied slots and their release instants.
    pub in_flight: Vec<InFlightSlot>,
    /// Per-tenant decayed usage balances (fair-share state).
    pub usage: Vec<(u64, f64)>,
    /// Instant the balances were last decayed to, microseconds.
    pub usage_decayed_at_us: Option<u64>,
    /// Largest per-session cross-check error seen so far, seconds.
    pub max_cross_check_err_secs: f64,
    /// Finalized per-session records (admitted or rejected sessions).
    pub records: Vec<SessionRecord>,
}

impl ServiceCheckpoint {
    /// Serializes the checkpoint as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint from JSON text.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        serde_json::from_str(text).map_err(|e| EntkError::Usage(format!("bad checkpoint: {e}")))
    }
}

/// The long-running multi-tenant session service (see module docs).
#[derive(Debug)]
pub struct ServiceEngine {
    config: ServiceConfig,
    arrivals: Vec<SessionArrival>,
    services: Vec<Option<SessionService>>,
    clock: SimTime,
    next_arrival: usize,
    pending: VecDeque<usize>,
    deferred: VecDeque<usize>,
    in_flight: BinaryHeap<Reverse<(SimTime, usize)>>,
    ledger: entk_cluster::UsageLedger<u64>,
    records: Vec<Option<SessionRecord>>,
    emitted: usize,
    suffix: String,
    max_cc: f64,
    admissions: Vec<AdmissionSample>,
    finished: bool,
}

impl ServiceEngine {
    /// Builds a service over a validated stream: non-empty, time-ordered,
    /// individually valid arrivals; `slots >= 1`; a sane queue bound; a
    /// federated backend with at least two members. Every session's
    /// service time is evaluated up front in parallel (arrival order is
    /// reassembled deterministically). With `strict`, the first failed or
    /// degraded session aborts construction with the underlying error —
    /// the original stream-fatal semantics.
    pub fn new(config: ServiceConfig, arrivals: &[SessionArrival]) -> Result<Self, EntkError> {
        Self::validate(&config, arrivals)?;
        let indices: Vec<usize> = (0..arrivals.len()).collect();
        let services = Self::evaluate(&config.stream, arrivals, &indices);
        if config.strict {
            for (i, s) in services.iter().enumerate() {
                let s = s.as_ref().expect("fresh evaluation covers every session");
                match s.status {
                    SessionStatus::Failed => {
                        return Err(s
                            .error
                            .clone()
                            .unwrap_or_else(|| EntkError::Runtime(format!("session {i}: failed"))))
                    }
                    SessionStatus::Partial => {
                        return Err(EntkError::Runtime(format!(
                            "session {i}: degraded to a partial result"
                        )))
                    }
                    _ => {}
                }
            }
        }
        Ok(ServiceEngine {
            ledger: entk_cluster::UsageLedger::new(config.policy.half_life_secs()),
            records: vec![None; arrivals.len()],
            services,
            arrivals: arrivals.to_vec(),
            config,
            clock: SimTime::ZERO,
            next_arrival: 0,
            pending: VecDeque::new(),
            deferred: VecDeque::new(),
            in_flight: BinaryHeap::new(),
            emitted: 0,
            suffix: String::new(),
            max_cc: 0.0,
            admissions: Vec::new(),
            finished: false,
        })
    }

    fn validate(config: &ServiceConfig, arrivals: &[SessionArrival]) -> Result<(), EntkError> {
        if arrivals.is_empty() {
            return Err(EntkError::Usage("cannot serve an empty stream".into()));
        }
        if config.stream.slots == 0 {
            return Err(EntkError::Usage("slots must be >= 1".into()));
        }
        if config.max_queue_depth == Some(0) {
            return Err(EntkError::Usage("max_queue_depth must be >= 1".into()));
        }
        if let StreamBackend::Federated { members } = config.stream.backend {
            if members < 2 {
                return Err(EntkError::Usage(
                    "federated stream backend needs at least 2 members".into(),
                ));
            }
        }
        for (i, w) in arrivals.windows(2).enumerate() {
            if w[1].arrival < w[0].arrival {
                return Err(EntkError::Usage(format!(
                    "arrivals out of order at index {}",
                    i + 1
                )));
            }
        }
        for a in arrivals {
            a.validate()?;
        }
        Ok(())
    }

    /// Parallel service evaluation of a subset of sessions, reassembled by
    /// index (same discipline as the figure sweeps). Returns a full-length
    /// vector with `None` at indices outside the subset.
    fn evaluate(
        stream: &WorkloadConfig,
        arrivals: &[SessionArrival],
        indices: &[usize],
    ) -> Vec<Option<SessionService>> {
        let mut evaluated: Vec<(usize, SessionService)> = indices
            .par_iter()
            .map(|&i| (i, evaluate_session(stream, i, &arrivals[i])))
            .collect();
        evaluated.sort_by_key(|(i, _)| *i);
        let mut services: Vec<Option<SessionService>> = vec![None; arrivals.len()];
        for (i, s) in evaluated {
            services[i] = Some(s);
        }
        services
    }

    /// The fair-share admission decisions taken so far (empty under FIFO).
    pub fn admissions(&self) -> &[AdmissionSample] {
        &self.admissions
    }

    /// The stream JSONL lines this engine instance has emitted so far — a
    /// fresh engine emits from line 0; a restored engine emits the suffix
    /// after its checkpoint's `emitted` cursor.
    pub fn emitted_jsonl(&self) -> &str {
        &self.suffix
    }

    /// Arrivals ingested so far.
    pub fn ingested(&self) -> usize {
        self.next_arrival
    }

    fn free_slots(&self) -> usize {
        self.config.stream.slots - self.in_flight.len()
    }

    /// Finalizes a session's record and advances the contiguous-prefix
    /// emission cursor.
    fn finalize(&mut self, index: usize, record: SessionRecord) {
        debug_assert!(self.records[index].is_none(), "record finalized twice");
        self.records[index] = Some(record);
        while self.emitted < self.records.len() {
            match &self.records[self.emitted] {
                Some(r) => {
                    self.suffix.push_str(&render_record(r));
                    self.emitted += 1;
                }
                None => break,
            }
        }
    }

    /// Moves deferred sessions into the bounded pending window while there
    /// is room.
    fn promote_deferred(&mut self) {
        if let Some(bound) = self.config.max_queue_depth {
            while self.pending.len() < bound {
                match self.deferred.pop_front() {
                    Some(i) => self.pending.push_back(i),
                    None => break,
                }
            }
        }
    }

    /// Position in the pending queue of the next session to admit.
    fn pick_next(&mut self) -> usize {
        match self.config.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::FairShare { .. } => {
                self.ledger.decay_to(self.clock);
                let mut best = 0usize;
                let mut best_usage = f64::INFINITY;
                for (pos, &i) in self.pending.iter().enumerate() {
                    let u = self.ledger.usage_of(&self.arrivals[i].tenant);
                    // Strict less-than keeps ties in arrival order.
                    if u < best_usage {
                        best_usage = u;
                        best = pos;
                    }
                }
                best
            }
        }
    }

    /// Admits session `i` at the current instant: charges its tenant
    /// (fair-share), occupies a slot until `now + service`, and finalizes
    /// its record.
    fn admit(&mut self, i: usize) {
        let svc = self.services[i]
            .as_ref()
            .expect("admitted session was evaluated")
            .clone();
        let arrival = &self.arrivals[i];
        let start = self.clock;
        let finish = start + svc.ttc;
        if let AdmissionPolicy::FairShare { .. } = self.config.policy {
            self.ledger.decay_to(self.clock);
            let admitted_usage = self.ledger.usage_of(&arrival.tenant);
            let min_waiting_usage = self
                .pending
                .iter()
                .map(|&j| self.ledger.usage_of(&self.arrivals[j].tenant))
                .min_by(|a, b| a.partial_cmp(b).expect("finite usage"));
            self.admissions.push(AdmissionSample {
                session: i,
                tenant: arrival.tenant,
                admitted_usage,
                min_waiting_usage,
            });
            self.ledger
                .charge(arrival.tenant, arrival.cores as f64 * svc.ttc.as_secs_f64());
        }
        self.in_flight.push(Reverse((finish, i)));
        self.max_cc = self.max_cc.max(svc.cc_err);
        let record = SessionRecord {
            session: i,
            tenant: arrival.tenant,
            pattern: arrival.pattern.as_str().to_string(),
            status: svc.status,
            error: svc.error.as_ref().map(|e| e.to_string()),
            arrival_secs: arrival.arrival.as_secs_f64(),
            start_secs: start.as_secs_f64(),
            finish_secs: finish.as_secs_f64(),
            latency_secs: finish.saturating_since(arrival.arrival).as_secs_f64(),
            ttc_secs: svc.ttc.as_secs_f64(),
            arrival_us: arrival.arrival.as_micros(),
            start_us: start.as_micros(),
            finish_us: finish.as_micros(),
            tasks: svc.tasks,
            events: svc.events,
            trace_fp: format!("{:016x}", svc.trace_fp),
        };
        self.finalize(i, record);
    }

    /// The admission fixpoint run after every event: promote deferred
    /// sessions into the bounded window, then admit while slots are free.
    fn settle(&mut self) {
        loop {
            self.promote_deferred();
            if self.free_slots() == 0 || self.pending.is_empty() {
                break;
            }
            let pos = self.pick_next();
            let i = self.pending.remove(pos).expect("picked position exists");
            self.admit(i);
        }
    }

    /// Applies the earliest completion: frees its slot and re-runs
    /// admission at the completion instant.
    fn apply_completion(&mut self) {
        let Reverse((t, _)) = self.in_flight.pop().expect("completion exists");
        self.clock = t;
        self.settle();
    }

    /// Ingests the next arrival: enqueue, reject, or defer, then re-run
    /// admission at the arrival instant.
    fn ingest_arrival(&mut self) {
        let i = self.next_arrival;
        self.next_arrival += 1;
        let at = self.arrivals[i].arrival;
        self.clock = self.clock.max(at);
        let saturated = self
            .config
            .max_queue_depth
            .is_some_and(|bound| self.pending.len() >= bound);
        if saturated {
            match self.config.saturation {
                SaturationMode::Defer => self.deferred.push_back(i),
                SaturationMode::Reject => {
                    let arrival = &self.arrivals[i];
                    let outcome = EntkError::Saturated(format!(
                        "session {i} rejected: queue depth {} at bound {}",
                        self.pending.len(),
                        self.config.max_queue_depth.unwrap_or(0),
                    ));
                    let secs = at.as_secs_f64();
                    let record = SessionRecord {
                        session: i,
                        tenant: arrival.tenant,
                        pattern: arrival.pattern.as_str().to_string(),
                        status: SessionStatus::Rejected,
                        error: Some(outcome.to_string()),
                        arrival_secs: secs,
                        start_secs: secs,
                        finish_secs: secs,
                        latency_secs: 0.0,
                        ttc_secs: 0.0,
                        arrival_us: at.as_micros(),
                        start_us: at.as_micros(),
                        finish_us: at.as_micros(),
                        tasks: 0,
                        events: 0,
                        trace_fp: format!("{:016x}", 0u64),
                    };
                    self.finalize(i, record);
                }
            }
        } else {
            self.pending.push_back(i);
        }
        self.settle();
    }

    /// Processes the single earliest event under the documented tie order
    /// (completions before arrivals at the same instant).
    fn step(&mut self) {
        let next_arrival = self.arrivals.get(self.next_arrival).map(|a| a.arrival);
        match (self.in_flight.peek(), next_arrival) {
            (Some(&Reverse((tf, _))), Some(ta)) if tf <= ta => self.apply_completion(),
            (_, Some(_)) => self.ingest_arrival(),
            (Some(_), None) => self.apply_completion(),
            (None, None) => unreachable!("step called with no events left"),
        }
    }

    /// Advances the service to arrival boundary `k`: exactly `k` arrivals
    /// ingested and every completion at or before the next arrival's
    /// instant applied (for `k >= sessions`, the stream is drained to
    /// completion). Checkpoints are taken at these boundaries.
    pub fn run_to_boundary(&mut self, k: usize) {
        let k = k.min(self.arrivals.len());
        while self.next_arrival < k {
            self.step();
        }
        loop {
            let horizon = self.arrivals.get(self.next_arrival).map(|a| a.arrival);
            match (self.in_flight.peek(), horizon) {
                (Some(&Reverse((tf, _))), Some(ta)) if tf <= ta => self.apply_completion(),
                (Some(_), None) => self.apply_completion(),
                _ => break,
            }
        }
    }

    /// Serializes the admission state at the current arrival boundary.
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        let s = &self.config.stream;
        ServiceCheckpoint {
            version: 1,
            seed: s.seed,
            resource: s.resource.clone(),
            slots: s.slots,
            backend: s.backend.label(),
            policy: self.config.policy.label().to_string(),
            half_life_secs: self.config.policy.half_life_secs(),
            max_queue_depth: self.config.max_queue_depth,
            saturation: self.config.saturation.label().to_string(),
            strict: self.config.strict,
            unit_failure_rate: s.unit_failure_rate,
            arrivals_fp: format!("{:016x}", fnv64(render_trace(&self.arrivals).as_bytes())),
            clock_us: self.clock.as_micros(),
            next_arrival: self.next_arrival,
            emitted: self.emitted,
            pending: self.pending.iter().copied().collect(),
            deferred: self.deferred.iter().copied().collect(),
            in_flight: {
                let mut slots: Vec<InFlightSlot> = self
                    .in_flight
                    .iter()
                    .map(|&Reverse((t, i))| InFlightSlot {
                        session: i,
                        finish_us: t.as_micros(),
                    })
                    .collect();
                slots.sort_by_key(|s| (s.finish_us, s.session));
                slots
            },
            usage: self.ledger.balances().map(|(k, v)| (*k, v)).collect(),
            usage_decayed_at_us: self.ledger.last_decay_micros(),
            max_cross_check_err_secs: self.max_cc,
            records: self.records.iter().flatten().cloned().collect(),
        }
    }

    /// Rebuilds a service from a checkpoint. The checkpoint must match the
    /// config and the arrival stream (fingerprint-checked); only sessions
    /// that still need service times — pending, deferred, or not yet
    /// arrived — are re-evaluated. The restored engine emits the stream
    /// JSONL *suffix* from the checkpoint's `emitted` cursor; prefix +
    /// suffix is byte-identical to the uninterrupted run.
    pub fn restore(
        config: ServiceConfig,
        arrivals: &[SessionArrival],
        ckpt: &ServiceCheckpoint,
    ) -> Result<Self, EntkError> {
        Self::validate(&config, arrivals)?;
        if ckpt.version != 1 {
            return Err(EntkError::Usage(format!(
                "unsupported checkpoint version {}",
                ckpt.version
            )));
        }
        let s = &config.stream;
        let mismatches: Vec<&str> = [
            (ckpt.seed != s.seed, "seed"),
            (ckpt.resource != s.resource, "resource"),
            (ckpt.slots != s.slots, "slots"),
            (ckpt.backend != s.backend.label(), "backend"),
            (ckpt.policy != config.policy.label(), "policy"),
            (
                ckpt.half_life_secs != config.policy.half_life_secs(),
                "half_life_secs",
            ),
            (
                ckpt.max_queue_depth != config.max_queue_depth,
                "max_queue_depth",
            ),
            (ckpt.saturation != config.saturation.label(), "saturation"),
            (ckpt.strict != config.strict, "strict"),
            (
                ckpt.unit_failure_rate != s.unit_failure_rate,
                "unit_failure_rate",
            ),
        ]
        .iter()
        .filter_map(|&(differs, name)| differs.then_some(name))
        .collect();
        if !mismatches.is_empty() {
            return Err(EntkError::Usage(format!(
                "checkpoint does not match the service config (differs on: {})",
                mismatches.join(", ")
            )));
        }
        let fp = format!("{:016x}", fnv64(render_trace(arrivals).as_bytes()));
        if ckpt.arrivals_fp != fp {
            return Err(EntkError::Usage(
                "checkpoint was taken against a different arrival stream \
                 (trace fingerprint mismatch)"
                    .into(),
            ));
        }
        let n = arrivals.len();
        if ckpt.next_arrival > n || ckpt.emitted > n {
            return Err(EntkError::Usage("checkpoint cursors out of range".into()));
        }
        let mut records: Vec<Option<SessionRecord>> = vec![None; n];
        for r in &ckpt.records {
            if r.session >= n || records[r.session].is_some() {
                return Err(EntkError::Usage(format!(
                    "checkpoint record for session {} is out of range or duplicated",
                    r.session
                )));
            }
            records[r.session] = Some(r.clone());
        }
        if records.iter().take(ckpt.emitted).any(Option::is_none) {
            return Err(EntkError::Usage(
                "checkpoint emitted cursor exceeds its finalized records".into(),
            ));
        }
        for &i in ckpt.pending.iter().chain(&ckpt.deferred) {
            if i >= ckpt.next_arrival || records[i].is_some() {
                return Err(EntkError::Usage(format!(
                    "checkpoint queues session {i} inconsistently"
                )));
            }
        }
        for slot in &ckpt.in_flight {
            if slot.session >= ckpt.next_arrival
                || records[slot.session].is_none()
                || slot.finish_us < ckpt.clock_us
            {
                return Err(EntkError::Usage(format!(
                    "checkpoint in-flight slot for session {} is inconsistent",
                    slot.session
                )));
            }
        }
        if ckpt.in_flight.len() > s.slots {
            return Err(EntkError::Usage(
                "checkpoint occupies more slots than the config provides".into(),
            ));
        }
        // Service times are needed only for sessions whose admission is
        // still ahead: queued, deferred, or not yet arrived.
        let mut need: Vec<usize> = ckpt
            .pending
            .iter()
            .chain(&ckpt.deferred)
            .copied()
            .chain(ckpt.next_arrival..n)
            .collect();
        need.sort_unstable();
        need.dedup();
        let services = Self::evaluate(s, arrivals, &need);
        Ok(ServiceEngine {
            ledger: entk_cluster::UsageLedger::restore(
                config.policy.half_life_secs(),
                ckpt.usage.iter().copied(),
                ckpt.usage_decayed_at_us,
            ),
            records,
            services,
            arrivals: arrivals.to_vec(),
            config,
            clock: SimTime::from_micros(ckpt.clock_us),
            next_arrival: ckpt.next_arrival,
            pending: ckpt.pending.iter().copied().collect(),
            deferred: ckpt.deferred.iter().copied().collect(),
            in_flight: ckpt
                .in_flight
                .iter()
                .map(|slot| Reverse((SimTime::from_micros(slot.finish_us), slot.session)))
                .collect(),
            emitted: ckpt.emitted,
            suffix: String::new(),
            max_cc: ckpt.max_cross_check_err_secs,
            admissions: Vec::new(),
            finished: false,
        })
    }

    /// Serves the stream to completion and assembles the outcome. The
    /// outcome's `jsonl` is always the full stream; `suffix_jsonl` is
    /// what *this* engine instance emitted (the whole stream for a fresh
    /// engine, the post-checkpoint suffix for a restored one).
    pub fn run(&mut self) -> Result<WorkloadOutcome, EntkError> {
        if self.finished {
            return Err(EntkError::Usage("service already ran to completion".into()));
        }
        self.run_to_boundary(self.arrivals.len());
        self.finished = true;
        Ok(self.assemble())
    }

    fn assemble(&mut self) -> WorkloadOutcome {
        let records: Vec<SessionRecord> = self
            .records
            .iter()
            .map(|r| r.clone().expect("completed service finalized every record"))
            .collect();
        let mut jsonl = String::new();
        for r in &records {
            jsonl.push_str(&render_record(r));
        }

        let mut metrics = Metrics::new();
        record_depth_gauges(&mut metrics, &records);
        let series = |name: &str| -> Vec<(f64, f64)> {
            metrics
                .series(name)
                .map(|s| {
                    s.points()
                        .iter()
                        .map(|&(t, v)| (t.as_secs_f64(), v))
                        .collect()
                })
                .unwrap_or_default()
        };
        let queue_depth = series(QUEUE_DEPTH_GAUGE);
        let in_service = series(IN_SERVICE_GAUGE);
        let (queue_depth_peak, queue_depth_mean) = metrics
            .series(QUEUE_DEPTH_GAUGE)
            .map(|s| (s.peak(), s.time_weighted_mean()))
            .unwrap_or((0.0, 0.0));

        // Latency percentiles over *served* sessions (ok or partial):
        // rejected sessions never ran and failed sessions have no service
        // span, so neither contributes a latency sample.
        let mut all = Summary::new();
        let mut by_tenant: BTreeMap<u64, Summary> = BTreeMap::new();
        let mut tenants: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut counts = [0usize; 4];
        let mut total_tasks = 0usize;
        let mut total_events = 0u64;
        let mut makespan = SimTime::ZERO;
        for r in &records {
            tenants.insert(r.tenant);
            total_tasks += r.tasks;
            total_events += r.events;
            match r.status {
                SessionStatus::Ok => counts[0] += 1,
                SessionStatus::Partial => counts[1] += 1,
                SessionStatus::Failed => counts[2] += 1,
                SessionStatus::Rejected => counts[3] += 1,
            }
            if r.status != SessionStatus::Rejected {
                makespan = makespan.max(SimTime::from_micros(r.finish_us));
            }
            if matches!(r.status, SessionStatus::Ok | SessionStatus::Partial) {
                all.add(r.latency_secs);
                by_tenant.entry(r.tenant).or_default().add(r.latency_secs);
            }
        }
        let latency_of = |tenant: u64, s: &Summary| {
            if s.count() == 0 {
                return TenantLatency {
                    tenant,
                    sessions: 0,
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                };
            }
            let ps = s.percentiles(&[50.0, 95.0, 99.0]);
            TenantLatency {
                tenant,
                sessions: s.count(),
                p50: ps[0],
                p95: ps[1],
                p99: ps[2],
            }
        };
        let per_tenant: Vec<TenantLatency> =
            by_tenant.iter().map(|(t, s)| latency_of(*t, s)).collect();

        let report = WorkloadReport {
            backend: self.config.stream.backend.label(),
            resource: self.config.stream.resource.clone(),
            seed: self.config.stream.seed,
            slots: self.config.stream.slots,
            policy: self.config.policy.label().to_string(),
            sessions: records.len(),
            tenants: tenants.len(),
            ok_sessions: counts[0],
            partial_sessions: counts[1],
            failed_sessions: counts[2],
            rejected_sessions: counts[3],
            total_tasks,
            total_events,
            makespan_secs: makespan.as_secs_f64(),
            latency: latency_of(u64::MAX, &all),
            per_tenant,
            queue_depth,
            queue_depth_peak,
            queue_depth_mean,
            in_service,
            max_cross_check_err_secs: self.max_cc,
            stream_fp: format!("{:016x}", fnv64(jsonl.as_bytes())),
            records,
        };
        // For a fresh engine the incrementally emitted lines are the whole
        // stream; for a restored engine they are exactly the suffix after
        // the checkpoint's emitted cursor.
        WorkloadOutcome {
            report,
            jsonl,
            suffix_jsonl: std::mem::take(&mut self.suffix),
        }
    }
}
