//! The multi-tenant session service: a live, event-driven admission loop
//! over pluggable policies, with bounded-queue backpressure and
//! checkpoint/restore at arrival boundaries.
//!
//! ## Model
//!
//! [`ServiceEngine`] replaces the precomputed-FIFO-only recursion the
//! stream runner started with. The engine is a discrete-event loop over
//! two event sources — the arrival *stream* and the in-flight completion
//! heap — with the documented tie order (a completion at `t` is applied
//! before an arrival at `t`, which is applied before any admission at
//! `t`, so a freed slot is always visible to a session admitted at the
//! same instant). After every event the engine runs an admission step:
//! while a slot is free and sessions are pending, the configured
//! [`AdmissionPolicy`] picks the next session.
//!
//! ## Out-of-core streaming
//!
//! Arrivals are *pulled* through an [`ArrivalStream`] — a CSV file, a
//! lazy synthetic generator, or a plain `Vec` — rather than materialized
//! up front, and each session's service time is evaluated just-in-time on
//! a persistent [`entk_sim::WorkerPool`] as its row enters the bounded
//! read-ahead window ([`EngineOptions::lookahead`]). Because a service
//! time is a pure function of (config, arrival, per-session seed), the
//! evaluation *order* is irrelevant to the output: the lazy engine is
//! byte-identical to the old evaluate-everything-upfront pass, and the
//! `lookahead` / `eval_workers` knobs provably cannot change a single
//! byte (property-tested). [`ServiceEngine::run`] buffers records for
//! the full [`WorkloadReport`]; [`ServiceEngine::run_streaming`] instead
//! renders each finalized record to a sink, folds it into the running
//! fingerprint and scalar [`ServeStats`], and drops it — resident state
//! is O(look-ahead + in-flight + queued), never O(stream length), which
//! is what lets a million-session trace serve in a flat memory
//! footprint.
//!
//! * [`AdmissionPolicy::Fifo`] — arrival order; byte-identical to the
//!   original `serve()` recursion (property-tested against a reference
//!   implementation).
//! * [`AdmissionPolicy::FairShare`] — the per-tenant usage-accounting
//!   policy lifted from `entk-cluster`'s `FairShareScheduler`
//!   ([`entk_cluster::UsageLedger`]) to session granularity: the pending
//!   session whose tenant has the least decayed core-second usage is
//!   admitted first (ties: arrival order), and the tenant is charged
//!   cores × service-time on admission. A hot tenant's burst therefore
//!   queues behind light tenants instead of starving them.
//!
//! ## Failure semantics
//!
//! A session whose backend run fails, or that degrades to a partial
//! result, is *not* stream-fatal: it is recorded with
//! `status: failed | partial` on its [`SessionRecord`] and the stream
//! continues. `strict: true` restores the original behavior (first
//! failure or degradation aborts the stream with the underlying error).
//!
//! ## Backpressure
//!
//! `max_queue_depth` bounds the pending queue. An arrival past the bound
//! is either **rejected** — recorded with `status: rejected` and a typed
//! [`EntkError::Saturated`] outcome on the record, never stream-fatal —
//! or **deferred** into an overflow buffer that feeds the bounded window
//! as admissions drain it (the session is eventually served; its latency
//! still counts from its true arrival).
//!
//! ## Checkpoint / restore
//!
//! [`ServiceEngine::checkpoint`] serializes the complete admission state
//! at an arrival boundary: the pending and deferred queues, in-flight
//! slot occupancy (finish instants), per-tenant usage balances with their
//! decay instant, the arrival cursor, the emitted-record cursor, and the
//! per-session seed cursor (the master seed — sub-seeds are a pure
//! splitmix64 function of it and the session index, so the cursor is just
//! the next index). The arrival-stream fingerprint is a *prefix*
//! fingerprint — the fold of the rendered CSV header plus every ingested
//! row — so it is identical at a given boundary no matter what the
//! look-ahead window happened to hold. [`ServiceEngine::restore`]
//! rebuilds the engine by re-pulling the served prefix from the stream
//! (validating, order-checking, and fingerprint-matching it row by row
//! while retaining only the rows still queued), re-evaluates only the
//! sessions that still need service times (pending, deferred, and
//! not-yet-arrived — completed sessions are carried as finalized
//! records), and replays to a byte-identical `WORKLOAD.jsonl` suffix:
//! prefix-emitted-before-the-kill + suffix is byte-identical to the
//! uninterrupted stream, including its fingerprint.
//!
//! Determinism argument: every admission decision is a pure function of
//! (config, arrivals, per-session service times), service times are pure
//! functions of (config, arrival, splitmix64(seed, index)), and the event
//! order is totally ordered by (time, kind, session index). A checkpoint
//! carries exactly the loop state, so the resumed trajectory is the same
//! trajectory.

use crate::arrival::{ArrivalStream, IntoArrivalStream, SessionArrival};
use crate::runner::{
    fnv64, fnv64_update, record_depth_gauges, render_record, SessionRecord, SessionStatus,
    StreamBackend, TenantLatency, WorkloadConfig, WorkloadOutcome, WorkloadReport,
    IN_SERVICE_GAUGE, QUEUE_DEPTH_GAUGE,
};
use crate::trace::{render_row, TRACE_HEADER};
use entk_core::prelude::*;
use entk_core::EntkError;
use entk_sim::{Metrics, SimDuration, SimTime, Summary, WorkerPool};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::{mpsc, Arc};

/// How the service picks the next pending session for a free slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Arrival order (the default; matches the original runner).
    Fifo,
    /// Least decayed per-tenant core-second usage first (ties: arrival
    /// order) — the cluster fair-share policy at session granularity.
    FairShare {
        /// Usage decay half-life in virtual seconds (0 = no decay).
        half_life_secs: f64,
    },
}

impl AdmissionPolicy {
    /// Stable label used in reports, checkpoints, and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::FairShare { .. } => "fair-share",
        }
    }

    /// Parses a policy name through the registry (`fifo`, `fair`,
    /// `fair-share`); unknown names list the registered alternatives.
    pub fn parse(s: &str) -> Result<Self, EntkError> {
        admission_policies().build_named(s, &())
    }

    fn half_life_secs(self) -> f64 {
        match self {
            AdmissionPolicy::Fifo => 0.0,
            AdmissionPolicy::FairShare { half_life_secs } => half_life_secs,
        }
    }
}

/// Params of the `fair` admission-policy plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FairAdmissionParams {
    /// Usage decay half-life in virtual seconds (0 = no decay).
    #[serde(default)]
    half_life_secs: f64,
}

impl Default for FairAdmissionParams {
    fn default() -> Self {
        FairAdmissionParams {
            half_life_secs: 0.0,
        }
    }
}

/// The admission-policy registry: every name `entk serve --policy` and the
/// spec file's `"policy"` key accept. `fair` and `fair-share` are the same
/// plugin; a zero half-life means "take the spec's top-level
/// `half_life_secs`" (the pre-registry behaviour of `--policy fair`).
pub fn admission_policies() -> &'static entk_core::Registry<AdmissionPolicy> {
    static TABLE: std::sync::OnceLock<entk_core::Registry<AdmissionPolicy>> =
        std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut r = entk_core::Registry::new("admission policy");
        r.register("fifo", |_: &(), params| {
            entk_core::require_no_params("admission policy", "fifo", params)?;
            Ok(AdmissionPolicy::Fifo)
        });
        for name in ["fair", "fair-share"] {
            r.register(name, move |_: &(), params| {
                let p: FairAdmissionParams =
                    entk_core::params_or_default("admission policy", name, params)?;
                Ok(AdmissionPolicy::FairShare {
                    half_life_secs: p.half_life_secs,
                })
            });
        }
        r
    })
}

/// What happens to an arrival when the pending queue is at its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationMode {
    /// Record the session as `rejected` with a typed
    /// [`EntkError::Saturated`] outcome and drop it.
    Reject,
    /// Park the session in an overflow buffer; it enters the bounded
    /// window (and becomes admissible) as the queue drains.
    Defer,
}

impl SaturationMode {
    /// Stable label used in checkpoints and specs.
    pub fn label(self) -> &'static str {
        match self {
            SaturationMode::Reject => "reject",
            SaturationMode::Defer => "defer",
        }
    }

    /// Parses a saturation mode name.
    pub fn parse(s: &str) -> Result<Self, EntkError> {
        match s {
            "reject" => Ok(SaturationMode::Reject),
            "defer" => Ok(SaturationMode::Defer),
            other => Err(EntkError::Usage(format!(
                "unknown saturation mode {other:?} (use \"reject\" or \"defer\")"
            ))),
        }
    }
}

/// Full configuration of the session service: the stream config plus the
/// admission policy, backpressure bound, and failure-strictness.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Seed / resource / slots / backend of the underlying stream.
    pub stream: WorkloadConfig,
    /// Admission policy over the pending queue.
    pub policy: AdmissionPolicy,
    /// Bound on the pending queue (`None` = unbounded).
    pub max_queue_depth: Option<usize>,
    /// What happens to arrivals past the bound.
    pub saturation: SaturationMode,
    /// `true` restores the original stream-fatal failure semantics: the
    /// first failed or degraded session aborts the whole stream.
    pub strict: bool,
}

impl ServiceConfig {
    /// FIFO admission with unbounded queue and lenient failures — the
    /// semantics of the original `serve()` on clean streams.
    pub fn fifo(stream: WorkloadConfig) -> Self {
        ServiceConfig {
            stream,
            policy: AdmissionPolicy::Fifo,
            max_queue_depth: None,
            saturation: SaturationMode::Reject,
            strict: false,
        }
    }

    /// Fair-share admission with the given usage half-life.
    pub fn fair_share(stream: WorkloadConfig, half_life_secs: f64) -> Self {
        ServiceConfig {
            policy: AdmissionPolicy::FairShare { half_life_secs },
            ..ServiceConfig::fifo(stream)
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::fifo(WorkloadConfig::default())
    }
}

/// splitmix64-style per-session seed derivation: decorrelates sessions
/// without consuming master-RNG draws, so inserting a session never
/// perturbs its neighbours. The "RNG sub-seed cursor" of a checkpoint is
/// just the master seed plus the next session index — this function is
/// pure.
pub fn session_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Service-time evaluation result of one session, before stream queueing.
#[derive(Debug, Clone)]
pub(crate) struct SessionService {
    pub(crate) status: SessionStatus,
    pub(crate) ttc: SimDuration,
    pub(crate) tasks: usize,
    pub(crate) events: u64,
    pub(crate) trace_fp: u64,
    pub(crate) cc_err: f64,
    pub(crate) error: Option<EntkError>,
}

/// Evaluates one session's service on its own virtual clock. Per-session
/// problems — a backend error or a degraded (partial) report — are folded
/// into the returned status, never propagated: the stream must survive
/// individual sessions.
fn evaluate_session(
    config: &WorkloadConfig,
    index: usize,
    arrival: &SessionArrival,
) -> SessionService {
    let failed = |e: EntkError| SessionService {
        status: SessionStatus::Failed,
        ttc: SimDuration::ZERO,
        tasks: 0,
        events: 0,
        trace_fp: 0,
        cc_err: 0.0,
        error: Some(e),
    };
    let mut pattern = match arrival.build_pattern() {
        Ok(p) => p,
        Err(e) => return failed(e),
    };
    let walltime = SimDuration::from_secs(10_000_000);
    let seed = session_seed(config.seed, index);
    let run = match config.backend {
        StreamBackend::Simulated => {
            let rc = ResourceConfig::new(config.resource.clone(), arrival.cores, walltime);
            let sim = SimulatedConfig {
                seed,
                unit_failure_rate: config.unit_failure_rate,
                fault: config.fault,
                scheduler: config.scheduler.clone(),
                ..Default::default()
            };
            run_simulated_traced(rc, sim, pattern.as_mut())
        }
        StreamBackend::Federated { members } => {
            let fed = FederatedConfig {
                seed,
                clusters: (0..members)
                    .map(|_| ClusterSpec {
                        unit_failure_rate: config.unit_failure_rate,
                        ..ClusterSpec::new(config.resource.clone(), arrival.cores, walltime)
                    })
                    .collect(),
                fault: config.fault,
                scheduler: config.scheduler.clone(),
                ..FederatedConfig::default()
            };
            run_federated_traced(fed, pattern.as_mut())
        }
    };
    let (report, telemetry) = match run {
        Ok(out) => out,
        Err(e) => return failed(e),
    };
    let cc = cross_check(&report, &telemetry.tracer);
    SessionService {
        status: if report.partial {
            SessionStatus::Partial
        } else {
            SessionStatus::Ok
        },
        ttc: report.ttc,
        tasks: report.task_count(),
        events: report.events,
        trace_fp: fnv64(telemetry.tracer.to_jsonl().as_bytes()),
        cc_err: cc.max_abs_error_secs,
        error: None,
    }
}

/// Tuning knobs of the streaming engine. These affect memory footprint
/// and parallelism only — the admission trajectory, emitted JSONL, and
/// every fingerprint are invariant under any choice (property-tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Bound on the arrival read-ahead window: how many arrivals may be
    /// pulled from the stream (and dispatched for evaluation) ahead of
    /// the ingestion cursor. Clamped to at least 1.
    pub lookahead: usize,
    /// Evaluation worker threads; `0` = auto (`ENTK_THREADS`, then
    /// `RAYON_NUM_THREADS`, then the host's available parallelism).
    pub eval_workers: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            lookahead: 256,
            eval_workers: 0,
        }
    }
}

fn default_eval_workers() -> usize {
    for var in ["ENTK_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Just-in-time session evaluation over the persistent `entk-sim` worker
/// pool: sessions are dispatched as they enter the read-ahead window and
/// their service times collected over a channel, so at most
/// O(look-ahead + queue) evaluations are ever outstanding — the streaming
/// replacement for the old upfront whole-stream rayon pass.
struct EvalPool {
    pool: WorkerPool,
    config: Arc<WorkloadConfig>,
    tx: mpsc::Sender<(usize, SessionService)>,
    rx: mpsc::Receiver<(usize, SessionService)>,
    ready: HashMap<usize, SessionService>,
    forgotten: HashSet<usize>,
}

impl EvalPool {
    fn new(config: WorkloadConfig, workers: usize) -> Self {
        let workers = if workers == 0 {
            default_eval_workers()
        } else {
            workers
        };
        let (tx, rx) = mpsc::channel();
        EvalPool {
            pool: WorkerPool::new(workers),
            config: Arc::new(config),
            tx,
            rx,
            ready: HashMap::new(),
            forgotten: HashSet::new(),
        }
    }

    /// Queues session `index` for evaluation. Results arrive on the
    /// channel in completion order; [`EvalPool::take`] reorders.
    fn dispatch(&self, index: usize, arrival: SessionArrival) {
        let tx = self.tx.clone();
        let config = Arc::clone(&self.config);
        self.pool.submit(vec![Box::new(move || {
            let svc = evaluate_session(&config, index, &arrival);
            // The receiver disappears only when the engine is dropped
            // mid-run; the result is simply discarded then.
            let _ = tx.send((index, svc));
        })]);
    }

    fn accept(&mut self, index: usize, svc: SessionService) {
        if !self.forgotten.remove(&index) {
            self.ready.insert(index, svc);
        }
    }

    /// Blocks until session `index`'s evaluation is available and returns
    /// it. Results for other sessions received while waiting are parked.
    fn take(&mut self, index: usize) -> SessionService {
        if let Some(svc) = self.ready.remove(&index) {
            return svc;
        }
        loop {
            let (i, svc) = self
                .rx
                .recv()
                .expect("evaluation pool hung up with results outstanding");
            if i == index {
                return svc;
            }
            self.accept(i, svc);
        }
    }

    /// Drops session `index`'s evaluation (a rejected arrival): the
    /// result is discarded whenever it lands.
    fn forget(&mut self, index: usize) {
        while let Ok((i, svc)) = self.rx.try_recv() {
            self.accept(i, svc);
        }
        if self.ready.remove(&index).is_none() {
            self.forgotten.insert(index);
        }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        // An engine dropped mid-run (strict abort, caller error) must not
        // first drain a deep backlog of now-useless evaluations.
        self.pool.cancel_queued();
    }
}

/// O(1)-memory aggregate summary of a streamed serve — what
/// [`ServiceEngine::run_streaming`] returns instead of a full
/// [`WorkloadOutcome`]. `stream_fp` is folded over the emitted JSONL
/// bytes and matches the buffered engine's `report.stream_fp` exactly;
/// latency is summarized as mean/max (percentiles need the full sample
/// set, which an out-of-core serve deliberately never holds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Sessions recorded (admitted or rejected).
    pub sessions: usize,
    /// Distinct tenants observed.
    pub tenants: usize,
    /// Sessions served to a clean report.
    pub ok_sessions: usize,
    /// Sessions degraded to a partial report.
    pub partial_sessions: usize,
    /// Sessions whose backend run failed.
    pub failed_sessions: usize,
    /// Sessions rejected at the queue bound.
    pub rejected_sessions: usize,
    /// Total tasks across served sessions.
    pub total_tasks: usize,
    /// Total simulator events across served sessions.
    pub total_events: u64,
    /// Last finish instant over non-rejected sessions, seconds.
    pub makespan_secs: f64,
    /// Mean served-session latency (ok | partial), seconds.
    pub mean_latency_secs: f64,
    /// Max served-session latency (ok | partial), seconds.
    pub max_latency_secs: f64,
    /// Largest per-session cross-check error, seconds.
    pub max_cross_check_err_secs: f64,
    /// FNV-1a 64 fingerprint of the emitted JSONL stream.
    pub stream_fp: String,
    /// Bytes of JSONL written to the sink.
    pub jsonl_bytes: u64,
    /// Peak resident sessions (read-ahead + queued + deferred +
    /// in-flight + reorder buffer) — the bounded-memory witness:
    /// independent of stream length.
    pub peak_resident_sessions: usize,
}

/// Streaming accumulator behind [`ServeStats`].
#[derive(Debug, Default)]
struct StatsAcc {
    sessions: usize,
    ok: usize,
    partial: usize,
    failed: usize,
    rejected: usize,
    tasks: usize,
    events: u64,
    makespan_secs: f64,
    lat_sum: f64,
    lat_max: f64,
    lat_count: usize,
    tenants: BTreeSet<u64>,
    fp: u64,
    jsonl_bytes: u64,
    peak_resident: usize,
}

impl StatsAcc {
    fn observe(&mut self, r: &SessionRecord) {
        self.sessions += 1;
        self.tenants.insert(r.tenant);
        self.tasks += r.tasks;
        self.events += r.events;
        match r.status {
            SessionStatus::Ok => self.ok += 1,
            SessionStatus::Partial => self.partial += 1,
            SessionStatus::Failed => self.failed += 1,
            SessionStatus::Rejected => self.rejected += 1,
        }
        if r.status != SessionStatus::Rejected {
            self.makespan_secs = self
                .makespan_secs
                .max(SimTime::from_micros(r.finish_us).as_secs_f64());
        }
        if matches!(r.status, SessionStatus::Ok | SessionStatus::Partial) {
            self.lat_sum += r.latency_secs;
            self.lat_max = self.lat_max.max(r.latency_secs);
            self.lat_count += 1;
        }
    }

    fn finish(self, max_cc: f64) -> ServeStats {
        ServeStats {
            sessions: self.sessions,
            tenants: self.tenants.len(),
            ok_sessions: self.ok,
            partial_sessions: self.partial,
            failed_sessions: self.failed,
            rejected_sessions: self.rejected,
            total_tasks: self.tasks,
            total_events: self.events,
            makespan_secs: self.makespan_secs,
            mean_latency_secs: if self.lat_count == 0 {
                0.0
            } else {
                self.lat_sum / self.lat_count as f64
            },
            max_latency_secs: self.lat_max,
            max_cross_check_err_secs: max_cc,
            stream_fp: format!("{:016x}", self.fp),
            jsonl_bytes: self.jsonl_bytes,
            peak_resident_sessions: self.peak_resident,
        }
    }
}

/// One fair-share admission decision, exposed for property tests: the
/// fairness invariant is `admitted_usage <= min_waiting_usage` at every
/// decision (a tenant over its share is never admitted while a tenant
/// under its share waits).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSample {
    /// Admitted session index.
    pub session: usize,
    /// Admitted session's tenant.
    pub tenant: u64,
    /// The admitted tenant's decayed usage at the decision instant.
    pub admitted_usage: f64,
    /// Smallest decayed usage among tenants still waiting after the pick
    /// (`None` when the pick emptied the queue).
    pub min_waiting_usage: Option<f64>,
}

/// One in-flight slot in a checkpoint: the session and when its slot
/// frees. The start instant is already on the session's finalized record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightSlot {
    /// Session occupying the slot.
    pub session: usize,
    /// Instant the slot frees, in microseconds.
    pub finish_us: u64,
}

/// A serialized arrival-boundary snapshot of the service's admission
/// state. JSON via [`ServiceCheckpoint::to_json`] /
/// [`ServiceCheckpoint::from_json`]; integrity-checked on restore against
/// the config and the arrival trace fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Checkpoint format version (2: `arrivals_fp` became a prefix
    /// fingerprint when ingestion went streaming).
    pub version: u32,
    /// Master seed (the RNG sub-seed cursor together with `next_arrival`).
    pub seed: u64,
    /// Resource label of the stream config.
    pub resource: String,
    /// Admission slots.
    pub slots: usize,
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Admission policy label.
    pub policy: String,
    /// Fair-share usage half-life, seconds.
    pub half_life_secs: f64,
    /// Pending-queue bound (`None` = unbounded).
    pub max_queue_depth: Option<usize>,
    /// Saturation mode label.
    pub saturation: String,
    /// Strict failure semantics flag.
    pub strict: bool,
    /// Per-unit failure-injection rate of the stream config.
    pub unit_failure_rate: f64,
    /// Scheduler plugin of the stream config (`None` = backend default;
    /// absent in pre-registry checkpoints, which restore as the default).
    #[serde(default)]
    pub scheduler: Option<entk_core::ComponentSpec>,
    /// Session fault policy of the stream config (absent in pre-registry
    /// checkpoints, which restore as the default).
    #[serde(default)]
    pub fault: Option<entk_core::FaultConfig>,
    /// FNV-1a 64 fingerprint of the rendered arrival-trace *prefix*
    /// ingested so far (header plus rows `0..next_arrival`), so a
    /// checkpoint cannot silently resume against a stream whose served
    /// prefix differs. Rows past the boundary are not covered — an
    /// out-of-core stream cannot be hashed without consuming it — but
    /// they are still order- and schema-validated as they are pulled.
    pub arrivals_fp: String,
    /// Virtual clock at the boundary, microseconds.
    pub clock_us: u64,
    /// Arrivals ingested so far (the next arrival index).
    pub next_arrival: usize,
    /// Records already emitted to the stream JSONL (the suffix a resumed
    /// service produces starts here).
    pub emitted: usize,
    /// Arrived-but-not-admitted sessions, in queue order.
    pub pending: Vec<usize>,
    /// Overflow sessions deferred past the queue bound, in arrival order.
    pub deferred: Vec<usize>,
    /// Occupied slots and their release instants.
    pub in_flight: Vec<InFlightSlot>,
    /// Per-tenant decayed usage balances (fair-share state).
    pub usage: Vec<(u64, f64)>,
    /// Instant the balances were last decayed to, microseconds.
    pub usage_decayed_at_us: Option<u64>,
    /// Largest per-session cross-check error seen so far, seconds.
    pub max_cross_check_err_secs: f64,
    /// Finalized per-session records (admitted or rejected sessions).
    pub records: Vec<SessionRecord>,
}

impl ServiceCheckpoint {
    /// Serializes the checkpoint as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint from JSON text.
    pub fn from_json(text: &str) -> Result<Self, EntkError> {
        serde_json::from_str(text).map_err(|e| EntkError::Usage(format!("bad checkpoint: {e}")))
    }
}

/// Where finalized records go: the buffered store reproduces the full
/// [`WorkloadOutcome`] (records retained, byte-identical to the original
/// upfront engine); the sink store is the out-of-core path — records are
/// rendered, folded into the running stream fingerprint, summarized into
/// [`StatsAcc`], and dropped.
enum RecordStore {
    Buffer(Vec<Option<SessionRecord>>),
    Sink(BTreeMap<usize, SessionRecord>),
}

impl RecordStore {
    fn reorder_len(&self) -> usize {
        match self {
            RecordStore::Buffer(_) => 0,
            RecordStore::Sink(unemitted) => unemitted.len(),
        }
    }
}

/// The long-running multi-tenant session service (see module docs).
pub struct ServiceEngine {
    config: ServiceConfig,
    options: EngineOptions,
    /// Arrival source past the read-ahead window; `None` once exhausted.
    stream: Option<Box<dyn ArrivalStream>>,
    /// Rows pulled from the stream so far (the next index to pull).
    pulled: usize,
    /// Arrival instant of the last pulled row, for order validation.
    last_pulled_at: Option<SimTime>,
    /// Pulled-but-not-ingested session indices, in arrival order.
    readahead: VecDeque<usize>,
    /// Arrival rows still needed: read-ahead ∪ pending ∪ deferred.
    held: HashMap<usize, SessionArrival>,
    /// Running FNV-1a 64 over the rendered trace prefix ingested so far.
    prefix_fp: u64,
    eval: EvalPool,
    clock: SimTime,
    next_arrival: usize,
    pending: VecDeque<usize>,
    deferred: VecDeque<usize>,
    in_flight: BinaryHeap<Reverse<(SimTime, usize)>>,
    ledger: entk_cluster::UsageLedger<u64>,
    store: RecordStore,
    emitted: usize,
    suffix: String,
    max_cc: f64,
    admissions: Vec<AdmissionSample>,
    acc: StatsAcc,
    finished: bool,
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("pulled", &self.pulled)
            .field("next_arrival", &self.next_arrival)
            .field("emitted", &self.emitted)
            .field("pending", &self.pending.len())
            .field("deferred", &self.deferred.len())
            .field("in_flight", &self.in_flight.len())
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl ServiceEngine {
    /// Builds a service over an arrival stream (a lazy
    /// [`ArrivalStream`], an owned `Vec`, or a borrowed slice — see
    /// [`IntoArrivalStream`]). Rows are validated as they are pulled:
    /// time-ordered, individually valid, non-empty (emptiness and any
    /// problem within the initial read-ahead window surface here; later
    /// rows fail the pull that reads them). Service times are evaluated
    /// just in time on a persistent worker pool as sessions enter the
    /// bounded read-ahead window — never the whole stream up front. With
    /// `strict`, the first failed or degraded session aborts the serve
    /// at its admission with the underlying error.
    pub fn new(config: ServiceConfig, arrivals: impl IntoArrivalStream) -> Result<Self, EntkError> {
        Self::with_options(config, arrivals, EngineOptions::default())
    }

    /// [`ServiceEngine::new`] with explicit streaming knobs. The knobs
    /// never change the served trajectory — only memory and parallelism.
    pub fn with_options(
        config: ServiceConfig,
        arrivals: impl IntoArrivalStream,
        options: EngineOptions,
    ) -> Result<Self, EntkError> {
        Self::validate_config(&config)?;
        let stream = arrivals.into_arrival_stream()?;
        let mut engine = Self::empty(config, options, stream);
        engine.fill_readahead()?;
        if engine.pulled == 0 {
            return Err(EntkError::Usage("cannot serve an empty stream".into()));
        }
        Ok(engine)
    }

    /// A fully-initialized engine at the start-of-stream state, before
    /// the read-ahead prime. Shared by construction and restore.
    fn empty(
        config: ServiceConfig,
        options: EngineOptions,
        stream: Box<dyn ArrivalStream>,
    ) -> Self {
        let eval = EvalPool::new(config.stream.clone(), options.eval_workers);
        ServiceEngine {
            ledger: entk_cluster::UsageLedger::new(config.policy.half_life_secs()),
            config,
            options,
            stream: Some(stream),
            pulled: 0,
            last_pulled_at: None,
            readahead: VecDeque::new(),
            held: HashMap::new(),
            prefix_fp: fnv64(format!("{TRACE_HEADER}\n").as_bytes()),
            eval,
            clock: SimTime::ZERO,
            next_arrival: 0,
            pending: VecDeque::new(),
            deferred: VecDeque::new(),
            in_flight: BinaryHeap::new(),
            store: RecordStore::Buffer(Vec::new()),
            emitted: 0,
            suffix: String::new(),
            max_cc: 0.0,
            admissions: Vec::new(),
            acc: StatsAcc {
                fp: fnv64(b""),
                ..StatsAcc::default()
            },
            finished: false,
        }
    }

    fn validate_config(config: &ServiceConfig) -> Result<(), EntkError> {
        if config.stream.slots == 0 {
            return Err(EntkError::Usage("slots must be >= 1".into()));
        }
        if config.max_queue_depth == Some(0) {
            return Err(EntkError::Usage("max_queue_depth must be >= 1".into()));
        }
        if let StreamBackend::Federated { members } = config.stream.backend {
            if members < 2 {
                return Err(EntkError::Usage(
                    "federated stream backend needs at least 2 members".into(),
                ));
            }
        }
        Ok(())
    }

    fn lookahead(&self) -> usize {
        self.options.lookahead.max(1)
    }

    /// Tops up the read-ahead window from the stream, validating each row
    /// (schema and arrival order) and dispatching its just-in-time
    /// evaluation. The window bound is what caps resident arrivals and
    /// outstanding evaluations; a non-empty window after this call is the
    /// engine's only way of knowing another arrival exists, so every
    /// event-loop decision tops up first.
    fn fill_readahead(&mut self) -> Result<(), EntkError> {
        while self.readahead.len() < self.lookahead() {
            let Some(stream) = self.stream.as_mut() else {
                break;
            };
            match stream.next_arrival()? {
                Some(row) => {
                    let i = self.pulled;
                    row.validate()?;
                    if self.last_pulled_at.is_some_and(|prev| row.arrival < prev) {
                        return Err(EntkError::Usage(format!(
                            "arrivals out of order at index {i}"
                        )));
                    }
                    self.last_pulled_at = Some(row.arrival);
                    self.pulled += 1;
                    self.eval.dispatch(i, row.clone());
                    self.held.insert(i, row);
                    self.readahead.push_back(i);
                }
                None => {
                    self.stream = None;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Arrival instant of the next not-yet-ingested session, if any.
    /// Valid only immediately after [`ServiceEngine::fill_readahead`].
    fn peek_arrival(&self) -> Option<SimTime> {
        self.readahead.front().map(|i| self.held[i].arrival)
    }

    /// Sessions resident right now, in any form — the quantity whose peak
    /// the bounded-memory claim is about.
    fn resident_sessions(&self) -> usize {
        self.held.len() + self.in_flight.len() + self.store.reorder_len()
    }

    /// The fair-share admission decisions taken so far (empty under FIFO).
    pub fn admissions(&self) -> &[AdmissionSample] {
        &self.admissions
    }

    /// The stream JSONL lines this engine instance has emitted so far — a
    /// fresh engine emits from line 0; a restored engine emits the suffix
    /// after its checkpoint's `emitted` cursor.
    pub fn emitted_jsonl(&self) -> &str {
        &self.suffix
    }

    /// Arrivals ingested so far.
    pub fn ingested(&self) -> usize {
        self.next_arrival
    }

    fn free_slots(&self) -> usize {
        self.config.stream.slots - self.in_flight.len()
    }

    /// Finalizes a session's record and advances the contiguous-prefix
    /// emission cursor. Buffered: the record is retained for the final
    /// report. Sink: the record waits (at most) in a small reorder buffer
    /// until every lower-index session is finalized, then is rendered,
    /// summarized, and dropped.
    fn finalize(&mut self, index: usize, record: SessionRecord) {
        match &mut self.store {
            RecordStore::Buffer(records) => {
                if records.len() <= index {
                    records.resize(index + 1, None);
                }
                debug_assert!(records[index].is_none(), "record finalized twice");
                records[index] = Some(record);
                while self.emitted < records.len() {
                    match &records[self.emitted] {
                        Some(r) => {
                            self.suffix.push_str(&render_record(r));
                            self.emitted += 1;
                        }
                        None => break,
                    }
                }
            }
            RecordStore::Sink(unemitted) => {
                debug_assert!(
                    index >= self.emitted && !unemitted.contains_key(&index),
                    "record finalized twice"
                );
                unemitted.insert(index, record);
                while let Some(r) = unemitted.remove(&self.emitted) {
                    self.acc.observe(&r);
                    self.suffix.push_str(&render_record(&r));
                    self.emitted += 1;
                }
            }
        }
    }

    /// Moves deferred sessions into the bounded pending window while there
    /// is room.
    fn promote_deferred(&mut self) {
        if let Some(bound) = self.config.max_queue_depth {
            while self.pending.len() < bound {
                match self.deferred.pop_front() {
                    Some(i) => self.pending.push_back(i),
                    None => break,
                }
            }
        }
    }

    /// Position in the pending queue of the next session to admit.
    fn pick_next(&mut self) -> usize {
        match self.config.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::FairShare { .. } => {
                self.ledger.decay_to(self.clock);
                let mut best = 0usize;
                let mut best_usage = f64::INFINITY;
                for (pos, i) in self.pending.iter().enumerate() {
                    let u = self.ledger.usage_of(&self.held[i].tenant);
                    // Strict less-than keeps ties in arrival order.
                    if u < best_usage {
                        best_usage = u;
                        best = pos;
                    }
                }
                best
            }
        }
    }

    /// Admits session `i` at the current instant: collects its service
    /// time from the evaluation pool (blocking if the evaluation is still
    /// running), charges its tenant (fair-share), occupies a slot until
    /// `now + service`, and finalizes its record. With `strict`, a failed
    /// or degraded session aborts the serve here, at its admission.
    fn admit(&mut self, i: usize) -> Result<(), EntkError> {
        let svc = self.eval.take(i);
        if self.config.strict {
            match svc.status {
                SessionStatus::Failed => {
                    return Err(svc
                        .error
                        .clone()
                        .unwrap_or_else(|| EntkError::Runtime(format!("session {i}: failed"))))
                }
                SessionStatus::Partial => {
                    return Err(EntkError::Runtime(format!(
                        "session {i}: degraded to a partial result"
                    )))
                }
                _ => {}
            }
        }
        let arrival = self.held.remove(&i).expect("admitted session is held");
        let start = self.clock;
        let finish = start + svc.ttc;
        if let AdmissionPolicy::FairShare { .. } = self.config.policy {
            self.ledger.decay_to(self.clock);
            let admitted_usage = self.ledger.usage_of(&arrival.tenant);
            let min_waiting_usage = self
                .pending
                .iter()
                .map(|j| self.ledger.usage_of(&self.held[j].tenant))
                .min_by(|a, b| a.partial_cmp(b).expect("finite usage"));
            if matches!(self.store, RecordStore::Buffer(_)) {
                self.admissions.push(AdmissionSample {
                    session: i,
                    tenant: arrival.tenant,
                    admitted_usage,
                    min_waiting_usage,
                });
            }
            self.ledger
                .charge(arrival.tenant, arrival.cores as f64 * svc.ttc.as_secs_f64());
        }
        self.in_flight.push(Reverse((finish, i)));
        self.max_cc = self.max_cc.max(svc.cc_err);
        let record = SessionRecord {
            session: i,
            tenant: arrival.tenant,
            pattern: arrival.pattern.as_str().to_string(),
            status: svc.status,
            error: svc.error.as_ref().map(|e| e.to_string()),
            arrival_secs: arrival.arrival.as_secs_f64(),
            start_secs: start.as_secs_f64(),
            finish_secs: finish.as_secs_f64(),
            latency_secs: finish.saturating_since(arrival.arrival).as_secs_f64(),
            ttc_secs: svc.ttc.as_secs_f64(),
            arrival_us: arrival.arrival.as_micros(),
            start_us: start.as_micros(),
            finish_us: finish.as_micros(),
            tasks: svc.tasks,
            events: svc.events,
            trace_fp: format!("{:016x}", svc.trace_fp),
        };
        self.finalize(i, record);
        Ok(())
    }

    /// The admission fixpoint run after every event: promote deferred
    /// sessions into the bounded window, then admit while slots are free.
    fn settle(&mut self) -> Result<(), EntkError> {
        loop {
            self.promote_deferred();
            if self.free_slots() == 0 || self.pending.is_empty() {
                return Ok(());
            }
            let pos = self.pick_next();
            let i = self.pending.remove(pos).expect("picked position exists");
            self.admit(i)?;
        }
    }

    /// Applies the earliest completion: frees its slot and re-runs
    /// admission at the completion instant.
    fn apply_completion(&mut self) -> Result<(), EntkError> {
        let Reverse((t, _)) = self.in_flight.pop().expect("completion exists");
        self.clock = t;
        self.settle()
    }

    /// Ingests the next arrival from the read-ahead window: folds it into
    /// the trace-prefix fingerprint, then enqueue, reject, or defer, then
    /// re-run admission at the arrival instant.
    fn ingest_arrival(&mut self) -> Result<(), EntkError> {
        let i = self.readahead.pop_front().expect("arrival in read-ahead");
        debug_assert_eq!(i, self.next_arrival, "ingestion follows pull order");
        self.next_arrival += 1;
        let at = self.held[&i].arrival;
        self.prefix_fp = fnv64_update(self.prefix_fp, render_row(&self.held[&i]).as_bytes());
        self.clock = self.clock.max(at);
        let saturated = self
            .config
            .max_queue_depth
            .is_some_and(|bound| self.pending.len() >= bound);
        if saturated {
            match self.config.saturation {
                SaturationMode::Defer => self.deferred.push_back(i),
                SaturationMode::Reject => {
                    let arrival = self.held.remove(&i).expect("rejected session is held");
                    // Its just-in-time evaluation is useless now.
                    self.eval.forget(i);
                    let outcome = EntkError::Saturated(format!(
                        "session {i} rejected: queue depth {} at bound {}",
                        self.pending.len(),
                        self.config.max_queue_depth.unwrap_or(0),
                    ));
                    let secs = at.as_secs_f64();
                    let record = SessionRecord {
                        session: i,
                        tenant: arrival.tenant,
                        pattern: arrival.pattern.as_str().to_string(),
                        status: SessionStatus::Rejected,
                        error: Some(outcome.to_string()),
                        arrival_secs: secs,
                        start_secs: secs,
                        finish_secs: secs,
                        latency_secs: 0.0,
                        ttc_secs: 0.0,
                        arrival_us: at.as_micros(),
                        start_us: at.as_micros(),
                        finish_us: at.as_micros(),
                        tasks: 0,
                        events: 0,
                        trace_fp: format!("{:016x}", 0u64),
                    };
                    self.finalize(i, record);
                }
            }
        } else {
            self.pending.push_back(i);
        }
        self.settle()
    }

    /// Processes the single earliest event under the documented tie order
    /// (completions before arrivals at the same instant).
    fn step(&mut self) -> Result<(), EntkError> {
        self.fill_readahead()?;
        match (self.in_flight.peek(), self.peek_arrival()) {
            (Some(&Reverse((tf, _))), Some(ta)) if tf <= ta => self.apply_completion(),
            (_, Some(_)) => self.ingest_arrival(),
            (Some(_), None) => self.apply_completion(),
            (None, None) => unreachable!("step called with no events left"),
        }
    }

    /// Advances the service to arrival boundary `k`: exactly `k` arrivals
    /// ingested and every completion at or before the next arrival's
    /// instant applied (for `k >= sessions`, the stream is drained to
    /// completion). Checkpoints are taken at these boundaries. Errors —
    /// a malformed or out-of-order row at pull time, a strict-mode abort
    /// at admission — leave the engine unusable.
    pub fn run_to_boundary(&mut self, k: usize) -> Result<(), EntkError> {
        loop {
            self.fill_readahead()?;
            let horizon = self.peek_arrival();
            if self.next_arrival < k && horizon.is_some() {
                self.step()?;
                continue;
            }
            match (self.in_flight.peek(), horizon) {
                (Some(&Reverse((tf, _))), Some(ta)) if tf <= ta => self.apply_completion()?,
                (Some(_), None) => self.apply_completion()?,
                _ => return Ok(()),
            }
        }
    }

    /// Serializes the admission state at the current arrival boundary.
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        let s = &self.config.stream;
        let records = match &self.store {
            RecordStore::Buffer(records) => records.iter().flatten().cloned().collect(),
            // run_streaming consumes the engine, so a sink-mode engine is
            // never observable from outside.
            RecordStore::Sink(_) => unreachable!("checkpoint during a streamed serve"),
        };
        ServiceCheckpoint {
            version: 2,
            seed: s.seed,
            resource: s.resource.clone(),
            slots: s.slots,
            backend: s.backend.label(),
            policy: self.config.policy.label().to_string(),
            half_life_secs: self.config.policy.half_life_secs(),
            max_queue_depth: self.config.max_queue_depth,
            saturation: self.config.saturation.label().to_string(),
            strict: self.config.strict,
            unit_failure_rate: s.unit_failure_rate,
            scheduler: s.scheduler.clone(),
            fault: Some(s.fault),
            arrivals_fp: format!("{:016x}", self.prefix_fp),
            clock_us: self.clock.as_micros(),
            next_arrival: self.next_arrival,
            emitted: self.emitted,
            pending: self.pending.iter().copied().collect(),
            deferred: self.deferred.iter().copied().collect(),
            in_flight: {
                let mut slots: Vec<InFlightSlot> = self
                    .in_flight
                    .iter()
                    .map(|&Reverse((t, i))| InFlightSlot {
                        session: i,
                        finish_us: t.as_micros(),
                    })
                    .collect();
                slots.sort_by_key(|s| (s.finish_us, s.session));
                slots
            },
            usage: self.ledger.balances().map(|(k, v)| (*k, v)).collect(),
            usage_decayed_at_us: self.ledger.last_decay_micros(),
            max_cross_check_err_secs: self.max_cc,
            records,
        }
    }

    /// Rebuilds a service from a checkpoint. The checkpoint must match
    /// the config and the arrival stream's served prefix (the prefix is
    /// re-pulled, re-validated, and fingerprint-checked while skipping);
    /// only sessions that still need service times — pending, deferred,
    /// or not yet arrived — are re-evaluated, exactly the discipline the
    /// just-in-time pool applies everywhere. The restored engine emits
    /// the stream JSONL *suffix* from the checkpoint's `emitted` cursor;
    /// prefix + suffix is byte-identical to the uninterrupted run.
    pub fn restore(
        config: ServiceConfig,
        arrivals: impl IntoArrivalStream,
        ckpt: &ServiceCheckpoint,
    ) -> Result<Self, EntkError> {
        Self::restore_with_options(config, arrivals, ckpt, EngineOptions::default())
    }

    /// [`ServiceEngine::restore`] with explicit streaming knobs.
    pub fn restore_with_options(
        config: ServiceConfig,
        arrivals: impl IntoArrivalStream,
        ckpt: &ServiceCheckpoint,
        options: EngineOptions,
    ) -> Result<Self, EntkError> {
        Self::validate_config(&config)?;
        if ckpt.version != 2 {
            return Err(EntkError::Usage(format!(
                "unsupported checkpoint version {}",
                ckpt.version
            )));
        }
        let s = &config.stream;
        let mismatches: Vec<&str> = [
            (ckpt.seed != s.seed, "seed"),
            (ckpt.resource != s.resource, "resource"),
            (ckpt.slots != s.slots, "slots"),
            (ckpt.backend != s.backend.label(), "backend"),
            (ckpt.policy != config.policy.label(), "policy"),
            (
                ckpt.half_life_secs != config.policy.half_life_secs(),
                "half_life_secs",
            ),
            (
                ckpt.max_queue_depth != config.max_queue_depth,
                "max_queue_depth",
            ),
            (ckpt.saturation != config.saturation.label(), "saturation"),
            (ckpt.strict != config.strict, "strict"),
            (
                ckpt.unit_failure_rate != s.unit_failure_rate,
                "unit_failure_rate",
            ),
            (ckpt.scheduler != s.scheduler, "scheduler"),
            (ckpt.fault.unwrap_or_default() != s.fault, "fault"),
        ]
        .iter()
        .filter_map(|&(differs, name)| differs.then_some(name))
        .collect();
        if !mismatches.is_empty() {
            return Err(EntkError::Usage(format!(
                "checkpoint does not match the service config (differs on: {})",
                mismatches.join(", ")
            )));
        }
        let keep: std::collections::HashSet<usize> =
            ckpt.pending.iter().chain(&ckpt.deferred).copied().collect();
        let stream = arrivals.into_arrival_stream()?;
        let mut engine = Self::empty(config, options, stream);
        // Re-pull the served prefix: every row is validated, order-checked,
        // and folded into the prefix fingerprint, but only rows still
        // queued (pending or deferred) are retained — the rest are dropped
        // as soon as they are hashed, so restore stays bounded-memory.
        while engine.pulled < ckpt.next_arrival {
            let row = match engine.stream.as_mut() {
                Some(stream) => stream.next_arrival()?,
                None => None,
            };
            let Some(row) = row else {
                return Err(EntkError::Usage("checkpoint cursors out of range".into()));
            };
            let i = engine.pulled;
            row.validate()?;
            if engine.last_pulled_at.is_some_and(|prev| row.arrival < prev) {
                return Err(EntkError::Usage(format!(
                    "arrivals out of order at index {i}"
                )));
            }
            engine.last_pulled_at = Some(row.arrival);
            engine.pulled += 1;
            engine.prefix_fp = fnv64_update(engine.prefix_fp, render_row(&row).as_bytes());
            if keep.contains(&i) {
                engine.held.insert(i, row);
            }
        }
        let fp = format!("{:016x}", engine.prefix_fp);
        if ckpt.arrivals_fp != fp {
            return Err(EntkError::Usage(
                "checkpoint was taken against a different arrival stream \
                 (trace fingerprint mismatch)"
                    .into(),
            ));
        }
        let n = ckpt.next_arrival;
        if ckpt.emitted > n {
            return Err(EntkError::Usage("checkpoint cursors out of range".into()));
        }
        let mut records: Vec<Option<SessionRecord>> = vec![None; n];
        for r in &ckpt.records {
            if r.session >= n || records[r.session].is_some() {
                return Err(EntkError::Usage(format!(
                    "checkpoint record for session {} is out of range or duplicated",
                    r.session
                )));
            }
            records[r.session] = Some(r.clone());
        }
        if records.iter().take(ckpt.emitted).any(Option::is_none) {
            return Err(EntkError::Usage(
                "checkpoint emitted cursor exceeds its finalized records".into(),
            ));
        }
        for &i in ckpt.pending.iter().chain(&ckpt.deferred) {
            if i >= ckpt.next_arrival || records[i].is_some() {
                return Err(EntkError::Usage(format!(
                    "checkpoint queues session {i} inconsistently"
                )));
            }
        }
        for slot in &ckpt.in_flight {
            if slot.session >= ckpt.next_arrival
                || records[slot.session].is_none()
                || slot.finish_us < ckpt.clock_us
            {
                return Err(EntkError::Usage(format!(
                    "checkpoint in-flight slot for session {} is inconsistent",
                    slot.session
                )));
            }
        }
        if ckpt.in_flight.len() > engine.config.stream.slots {
            return Err(EntkError::Usage(
                "checkpoint occupies more slots than the config provides".into(),
            ));
        }
        // Service times are needed only for sessions whose admission is
        // still ahead. Queued and deferred rows were retained above and go
        // back to the evaluation pool now, in index order; not-yet-arrived
        // rows are dispatched lazily as `fill_readahead` pulls them.
        let mut queued: Vec<usize> = engine.held.keys().copied().collect();
        queued.sort_unstable();
        for i in queued {
            let row = engine.held[&i].clone();
            engine.eval.dispatch(i, row);
        }
        engine.ledger = entk_cluster::UsageLedger::restore(
            engine.config.policy.half_life_secs(),
            ckpt.usage.iter().copied(),
            ckpt.usage_decayed_at_us,
        );
        engine.store = RecordStore::Buffer(records);
        engine.clock = SimTime::from_micros(ckpt.clock_us);
        engine.next_arrival = ckpt.next_arrival;
        engine.pending = ckpt.pending.iter().copied().collect();
        engine.deferred = ckpt.deferred.iter().copied().collect();
        engine.in_flight = ckpt
            .in_flight
            .iter()
            .map(|slot| Reverse((SimTime::from_micros(slot.finish_us), slot.session)))
            .collect();
        engine.emitted = ckpt.emitted;
        engine.max_cc = ckpt.max_cross_check_err_secs;
        Ok(engine)
    }

    /// Serves the stream to completion and assembles the outcome. The
    /// outcome's `jsonl` is always the full stream; `suffix_jsonl` is
    /// what *this* engine instance emitted (the whole stream for a fresh
    /// engine, the post-checkpoint suffix for a restored one).
    pub fn run(&mut self) -> Result<WorkloadOutcome, EntkError> {
        if self.finished {
            return Err(EntkError::Usage("service already ran to completion".into()));
        }
        self.run_to_boundary(usize::MAX)?;
        self.finished = true;
        Ok(self.assemble())
    }

    /// Serves the stream to completion in *sink* mode: every finalized
    /// record is rendered to `out`, folded into the running fingerprint,
    /// accumulated into the scalar [`ServeStats`], and dropped. Resident
    /// state is bounded by the look-ahead window plus in-flight and queued
    /// sessions — never by the stream length — which is what lets a
    /// million-session trace serve in a flat memory footprint.
    ///
    /// Sink mode consumes the engine (no checkpoint can observe the
    /// dropped records) and requires a fresh engine, not a restored one.
    pub fn run_streaming<W: std::io::Write>(
        mut self,
        out: &mut W,
    ) -> Result<ServeStats, EntkError> {
        if self.finished || self.next_arrival != 0 || self.emitted != 0 {
            return Err(EntkError::Usage(
                "streaming serve requires a fresh engine".into(),
            ));
        }
        self.store = RecordStore::Sink(BTreeMap::new());
        loop {
            self.fill_readahead()?;
            if self.in_flight.is_empty() && self.peek_arrival().is_none() {
                break;
            }
            self.step()?;
            if !self.suffix.is_empty() {
                out.write_all(self.suffix.as_bytes())
                    .map_err(|e| EntkError::Resource(format!("writing stream JSONL: {e}")))?;
                self.acc.fp = fnv64_update(self.acc.fp, self.suffix.as_bytes());
                self.acc.jsonl_bytes += self.suffix.len() as u64;
                self.suffix.clear();
            }
            let resident = self.resident_sessions();
            self.acc.peak_resident = self.acc.peak_resident.max(resident);
        }
        debug_assert!(self.pending.is_empty() && self.deferred.is_empty());
        self.finished = true;
        Ok(self.acc.finish(self.max_cc))
    }

    fn assemble(&mut self) -> WorkloadOutcome {
        let RecordStore::Buffer(buffer) = &self.store else {
            unreachable!("assemble after a streamed serve");
        };
        let records: Vec<SessionRecord> = buffer
            .iter()
            .map(|r| r.clone().expect("completed service finalized every record"))
            .collect();
        let mut jsonl = String::new();
        for r in &records {
            jsonl.push_str(&render_record(r));
        }

        let mut metrics = Metrics::new();
        record_depth_gauges(&mut metrics, &records);
        let series = |name: &str| -> Vec<(f64, f64)> {
            metrics
                .series(name)
                .map(|s| {
                    s.points()
                        .iter()
                        .map(|&(t, v)| (t.as_secs_f64(), v))
                        .collect()
                })
                .unwrap_or_default()
        };
        let queue_depth = series(QUEUE_DEPTH_GAUGE);
        let in_service = series(IN_SERVICE_GAUGE);
        let (queue_depth_peak, queue_depth_mean) = metrics
            .series(QUEUE_DEPTH_GAUGE)
            .map(|s| (s.peak(), s.time_weighted_mean()))
            .unwrap_or((0.0, 0.0));

        // Latency percentiles over *served* sessions (ok or partial):
        // rejected sessions never ran and failed sessions have no service
        // span, so neither contributes a latency sample.
        let mut all = Summary::new();
        let mut by_tenant: BTreeMap<u64, Summary> = BTreeMap::new();
        let mut tenants: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut counts = [0usize; 4];
        let mut total_tasks = 0usize;
        let mut total_events = 0u64;
        let mut makespan = SimTime::ZERO;
        for r in &records {
            tenants.insert(r.tenant);
            total_tasks += r.tasks;
            total_events += r.events;
            match r.status {
                SessionStatus::Ok => counts[0] += 1,
                SessionStatus::Partial => counts[1] += 1,
                SessionStatus::Failed => counts[2] += 1,
                SessionStatus::Rejected => counts[3] += 1,
            }
            if r.status != SessionStatus::Rejected {
                makespan = makespan.max(SimTime::from_micros(r.finish_us));
            }
            if matches!(r.status, SessionStatus::Ok | SessionStatus::Partial) {
                all.add(r.latency_secs);
                by_tenant.entry(r.tenant).or_default().add(r.latency_secs);
            }
        }
        let latency_of = |tenant: u64, s: &Summary| {
            if s.count() == 0 {
                return TenantLatency {
                    tenant,
                    sessions: 0,
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                };
            }
            let ps = s.percentiles(&[50.0, 95.0, 99.0]);
            TenantLatency {
                tenant,
                sessions: s.count(),
                p50: ps[0],
                p95: ps[1],
                p99: ps[2],
            }
        };
        let per_tenant: Vec<TenantLatency> =
            by_tenant.iter().map(|(t, s)| latency_of(*t, s)).collect();

        let report = WorkloadReport {
            backend: self.config.stream.backend.label(),
            resource: self.config.stream.resource.clone(),
            seed: self.config.stream.seed,
            slots: self.config.stream.slots,
            policy: self.config.policy.label().to_string(),
            sessions: records.len(),
            tenants: tenants.len(),
            ok_sessions: counts[0],
            partial_sessions: counts[1],
            failed_sessions: counts[2],
            rejected_sessions: counts[3],
            total_tasks,
            total_events,
            makespan_secs: makespan.as_secs_f64(),
            latency: latency_of(u64::MAX, &all),
            per_tenant,
            queue_depth,
            queue_depth_peak,
            queue_depth_mean,
            in_service,
            max_cross_check_err_secs: self.max_cc,
            stream_fp: format!("{:016x}", fnv64(jsonl.as_bytes())),
            records,
        };
        // For a fresh engine the incrementally emitted lines are the whole
        // stream; for a restored engine they are exactly the suffix after
        // the checkpoint's emitted cursor.
        WorkloadOutcome {
            report,
            jsonl,
            suffix_jsonl: std::mem::take(&mut self.suffix),
        }
    }
}
