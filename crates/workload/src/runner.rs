//! The deterministic stream runner: admits a time-ordered stream of
//! session arrivals onto a shared backend and reports latency, queue
//! depth, and makespan under contention.
//!
//! ## Model
//!
//! The runner is an open-loop queueing system at session granularity. The
//! shared backend exposes `slots` concurrent admission slots (think: how
//! many pilot sessions the resource provider lets one gateway run at
//! once). Sessions are admitted FIFO: arrival `i` starts at
//! `max(arrival_i, k-th earliest slot-free time)` and occupies its slot
//! for its time-to-completion.
//!
//! Each admitted session runs through the existing
//! `SessionEngine`/`ExecutionBackend` seam (`run_simulated_traced` /
//! `run_federated_traced`) on its own virtual clock; its service time is
//! the session report's TTC. Because every simulated session starts from
//! its own t = 0, service times are independent of stream start times, so
//! the per-session evaluations are embarrassingly parallel — the runner
//! fans them across cores in input order (same reassembly discipline as
//! `entk-bench`'s `SweepRunner`) while the slot recursion itself stays
//! serial and deterministic. Same seed + same arrivals ⇒ byte-identical
//! JSONL and report.

use crate::arrival::SessionArrival;
use entk_core::prelude::*;
use entk_core::EntkError;
use entk_sim::{Metrics, SimDuration, SimTime, Summary};
use rayon::prelude::*;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Gauge name of the arrived-but-not-started depth series.
pub const QUEUE_DEPTH_GAUGE: &str = "workload.queue_depth";
/// Gauge name of the admitted-and-running depth series.
pub const IN_SERVICE_GAUGE: &str = "workload.in_service";

/// Which shared backend the stream admits sessions onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBackend {
    /// One simulated cluster per session pilot.
    Simulated,
    /// Each session late-binds across `members` simulated clusters.
    Federated {
        /// Member clusters per session (>= 2).
        members: usize,
    },
}

impl StreamBackend {
    /// Stable label used in reports and bench rows.
    pub fn label(self) -> String {
        match self {
            StreamBackend::Simulated => "simulated".to_string(),
            StreamBackend::Federated { members } => format!("federated:{members}"),
        }
    }
}

/// Stream-level configuration of the workload runner.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Master seed; each session derives an independent sub-seed from it.
    pub seed: u64,
    /// Resource every session's pilot is acquired on.
    pub resource: String,
    /// Concurrent admission slots of the shared backend.
    pub slots: usize,
    /// Backend sessions run on.
    pub backend: StreamBackend,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 2016,
            resource: "xsede.stampede".to_string(),
            slots: 4,
            backend: StreamBackend::Simulated,
        }
    }
}

/// Latency percentiles of one tenant (or of the whole stream).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantLatency {
    /// Tenant id; `u64::MAX` marks the all-tenants aggregate.
    pub tenant: u64,
    /// Sessions this tenant submitted.
    pub sessions: usize,
    /// Median latency (arrival → finish), seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
}

/// One admitted session's stream-level outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionRecord {
    /// Index in arrival order.
    pub session: usize,
    /// Owning tenant.
    pub tenant: u64,
    /// Pattern label.
    pub pattern: String,
    /// Arrival instant, seconds.
    pub arrival_secs: f64,
    /// Admission instant, seconds.
    pub start_secs: f64,
    /// Completion instant, seconds.
    pub finish_secs: f64,
    /// Arrival → finish, seconds.
    pub latency_secs: f64,
    /// The session's own time-to-completion (service time), seconds.
    pub ttc_secs: f64,
    /// Tasks the session executed.
    pub tasks: usize,
    /// Simulator events the session processed.
    pub events: u64,
    /// FNV-1a 64 fingerprint of the session's JSONL event trace.
    pub trace_fp: String,
}

/// Aggregated stream report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadReport {
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Resource sessions ran on.
    pub resource: String,
    /// Master seed.
    pub seed: u64,
    /// Concurrent admission slots.
    pub slots: usize,
    /// Sessions served.
    pub sessions: usize,
    /// Distinct tenants observed.
    pub tenants: usize,
    /// Total tasks across all sessions.
    pub total_tasks: usize,
    /// Total simulator events across all sessions.
    pub total_events: u64,
    /// Stream makespan: latest session finish, seconds.
    pub makespan_secs: f64,
    /// All-tenants latency percentiles.
    pub latency: TenantLatency,
    /// Per-tenant latency percentiles, sorted by tenant id.
    pub per_tenant: Vec<TenantLatency>,
    /// Arrived-but-not-started depth over stream time (secs, depth).
    pub queue_depth: Vec<(f64, f64)>,
    /// Peak of the queue-depth series.
    pub queue_depth_peak: f64,
    /// Time-weighted mean of the queue-depth series.
    pub queue_depth_mean: f64,
    /// Admitted-and-running depth over stream time (secs, depth).
    pub in_service: Vec<(f64, f64)>,
    /// Largest per-session trace/accounting divergence, seconds. The
    /// cross-check gate (`<= 1e-6`) is asserted by benches and tests.
    pub max_cross_check_err_secs: f64,
    /// FNV-1a 64 fingerprint of the stream JSONL.
    pub stream_fp: String,
    /// Per-session records in arrival order.
    pub records: Vec<SessionRecord>,
}

/// A served stream: the report plus the stream JSONL (one line per
/// session, byte-identical under replay).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Aggregated report.
    pub report: WorkloadReport,
    /// One JSON line per session, in arrival order.
    pub jsonl: String,
}

/// FNV-1a 64 over arbitrary bytes (same constants as the bench trace
/// fingerprints, so stream and session fingerprints are comparable).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64-style per-session seed derivation: decorrelates sessions
/// without consuming master-RNG draws, so inserting a session never
/// perturbs its neighbours.
fn session_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Service-time evaluation result of one session, before stream queueing.
struct SessionService {
    ttc: SimDuration,
    tasks: usize,
    events: u64,
    trace_fp: u64,
    cc_err: f64,
}

fn run_session(
    config: &WorkloadConfig,
    index: usize,
    arrival: &SessionArrival,
) -> Result<SessionService, EntkError> {
    let mut pattern = arrival.build_pattern()?;
    let walltime = SimDuration::from_secs(10_000_000);
    let seed = session_seed(config.seed, index);
    let (report, telemetry) = match config.backend {
        StreamBackend::Simulated => {
            let rc = ResourceConfig::new(config.resource.clone(), arrival.cores, walltime);
            let sim = SimulatedConfig {
                seed,
                ..Default::default()
            };
            run_simulated_traced(rc, sim, pattern.as_mut())?
        }
        StreamBackend::Federated { members } => {
            if members < 2 {
                return Err(EntkError::Usage(
                    "federated stream backend needs at least 2 members".into(),
                ));
            }
            let fed = FederatedConfig {
                seed,
                clusters: (0..members)
                    .map(|_| ClusterSpec::new(config.resource.clone(), arrival.cores, walltime))
                    .collect(),
                ..FederatedConfig::default()
            };
            run_federated_traced(fed, pattern.as_mut())?
        }
    };
    if report.partial {
        return Err(EntkError::Runtime(format!(
            "session {index}: degraded to a partial result"
        )));
    }
    let cc = cross_check(&report, &telemetry.tracer);
    Ok(SessionService {
        ttc: report.ttc,
        tasks: report.task_count(),
        events: report.events,
        trace_fp: fnv64(telemetry.tracer.to_jsonl().as_bytes()),
        cc_err: cc.max_abs_error_secs,
    })
}

/// Serves a stream of arrivals on the configured backend.
///
/// Validates the stream (non-empty, time-ordered, individually valid
/// rows), evaluates every session's service time in parallel, then runs
/// the serial `slots`-server FIFO admission recursion and assembles the
/// report. Deterministic: same config + same arrivals ⇒ byte-identical
/// [`WorkloadOutcome`].
pub fn serve(
    config: &WorkloadConfig,
    arrivals: &[SessionArrival],
) -> Result<WorkloadOutcome, EntkError> {
    if arrivals.is_empty() {
        return Err(EntkError::Usage("cannot serve an empty stream".into()));
    }
    if config.slots == 0 {
        return Err(EntkError::Usage("slots must be >= 1".into()));
    }
    for (i, w) in arrivals.windows(2).enumerate() {
        if w[1].arrival < w[0].arrival {
            return Err(EntkError::Usage(format!(
                "arrivals out of order at index {}",
                i + 1
            )));
        }
    }
    for a in arrivals {
        a.validate()?;
    }

    // Parallel service-time evaluation, reassembled in arrival order.
    let indexed: Vec<(usize, &SessionArrival)> = arrivals.iter().enumerate().collect();
    let mut evaluated: Vec<(usize, Result<SessionService, EntkError>)> = indexed
        .into_par_iter()
        .map(|(i, a)| (i, run_session(config, i, a)))
        .collect();
    evaluated.sort_by_key(|(i, _)| *i);
    let mut services = Vec::with_capacity(arrivals.len());
    for (_, r) in evaluated {
        services.push(r?);
    }

    // Serial k-server FIFO admission recursion.
    let mut free: BinaryHeap<Reverse<SimTime>> =
        (0..config.slots).map(|_| Reverse(SimTime::ZERO)).collect();
    let mut records = Vec::with_capacity(arrivals.len());
    let mut jsonl = String::new();
    let mut max_cc = 0.0f64;
    let mut total_tasks = 0usize;
    let mut total_events = 0u64;
    let mut makespan = SimTime::ZERO;
    for (i, (arrival, service)) in arrivals.iter().zip(&services).enumerate() {
        let Reverse(avail) = free.pop().expect("slots >= 1");
        let start = arrival.arrival.max(avail);
        let finish = start + service.ttc;
        free.push(Reverse(finish));
        makespan = makespan.max(finish);
        max_cc = max_cc.max(service.cc_err);
        total_tasks += service.tasks;
        total_events += service.events;
        let record = SessionRecord {
            session: i,
            tenant: arrival.tenant,
            pattern: arrival.pattern.as_str().to_string(),
            arrival_secs: arrival.arrival.as_secs_f64(),
            start_secs: start.as_secs_f64(),
            finish_secs: finish.as_secs_f64(),
            latency_secs: finish.saturating_since(arrival.arrival).as_secs_f64(),
            ttc_secs: service.ttc.as_secs_f64(),
            tasks: service.tasks,
            events: service.events,
            trace_fp: format!("{:016x}", service.trace_fp),
        };
        // Hand-rendered so the stream JSONL is byte-stable by construction.
        jsonl.push_str(&format!(
            "{{\"session\":{},\"tenant\":{},\"pattern\":\"{}\",\"arrival\":{:.6},\
             \"start\":{:.6},\"finish\":{:.6},\"latency\":{:.6},\"ttc\":{:.6},\
             \"tasks\":{},\"events\":{},\"trace_fp\":\"{}\"}}\n",
            record.session,
            record.tenant,
            record.pattern,
            record.arrival_secs,
            record.start_secs,
            record.finish_secs,
            record.latency_secs,
            record.ttc_secs,
            record.tasks,
            record.events,
            record.trace_fp,
        ));
        records.push(record);
    }

    // Queue-depth / in-service gauges from the admission timeline, through
    // the telemetry metrics machinery (deterministic iteration order).
    let mut metrics = Metrics::new();
    record_depth_gauges(&mut metrics, &records);
    let series = |name: &str| -> Vec<(f64, f64)> {
        metrics
            .series(name)
            .map(|s| {
                s.points()
                    .iter()
                    .map(|&(t, v)| (t.as_secs_f64(), v))
                    .collect()
            })
            .unwrap_or_default()
    };
    let queue_depth = series(QUEUE_DEPTH_GAUGE);
    let in_service = series(IN_SERVICE_GAUGE);
    let (queue_depth_peak, queue_depth_mean) = metrics
        .series(QUEUE_DEPTH_GAUGE)
        .map(|s| (s.peak(), s.time_weighted_mean()))
        .unwrap_or((0.0, 0.0));

    // Latency percentiles, aggregate and per tenant.
    let mut all = Summary::new();
    let mut by_tenant: BTreeMap<u64, Summary> = BTreeMap::new();
    for r in &records {
        all.add(r.latency_secs);
        by_tenant.entry(r.tenant).or_default().add(r.latency_secs);
    }
    let latency_of = |tenant: u64, s: &Summary| {
        let ps = s.percentiles(&[50.0, 95.0, 99.0]);
        TenantLatency {
            tenant,
            sessions: s.count(),
            p50: ps[0],
            p95: ps[1],
            p99: ps[2],
        }
    };
    let per_tenant: Vec<TenantLatency> = by_tenant.iter().map(|(t, s)| latency_of(*t, s)).collect();

    let report = WorkloadReport {
        backend: config.backend.label(),
        resource: config.resource.clone(),
        seed: config.seed,
        slots: config.slots,
        sessions: records.len(),
        tenants: per_tenant.len(),
        total_tasks,
        total_events,
        makespan_secs: makespan.as_secs_f64(),
        latency: latency_of(u64::MAX, &all),
        per_tenant,
        queue_depth,
        queue_depth_peak,
        queue_depth_mean,
        in_service,
        max_cross_check_err_secs: max_cc,
        stream_fp: format!("{:016x}", fnv64(jsonl.as_bytes())),
        records,
    };
    Ok(WorkloadOutcome { report, jsonl })
}

/// Replays the admission timeline as gauge samples: queue depth counts
/// sessions that arrived but have not started; in-service counts sessions
/// between start and finish. Ties resolve finish → arrive → start so a
/// slot freed at `t` is visible to a session starting at `t`.
fn record_depth_gauges(metrics: &mut Metrics, records: &[SessionRecord]) {
    // (micros, kind, delta_queued, delta_running); kind orders ties.
    let mut events: Vec<(u64, u8, i64, i64)> = Vec::with_capacity(records.len() * 3);
    let micros = |secs: f64| SimDuration::from_secs_f64(secs).as_micros();
    for r in records {
        events.push((micros(r.finish_secs), 0, 0, -1));
        events.push((micros(r.arrival_secs), 1, 1, 0));
        events.push((micros(r.start_secs), 2, -1, 1));
    }
    events.sort_unstable();
    let (mut queued, mut running) = (0i64, 0i64);
    for (t, _, dq, dr) in events {
        queued += dq;
        running += dr;
        let at = SimTime::from_micros(t);
        metrics.gauge(QUEUE_DEPTH_GAUGE, at, queued as f64);
        metrics.gauge(IN_SERVICE_GAUGE, at, running as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{OpenLoopProcess, WorkloadGenerator};

    fn small_stream() -> Vec<SessionArrival> {
        OpenLoopProcess::poisson(9, 12, 4, 60.0).generate().unwrap()
    }

    #[test]
    fn serve_replays_byte_identically() {
        let config = WorkloadConfig {
            slots: 2,
            ..WorkloadConfig::default()
        };
        let arrivals = small_stream();
        let a = serve(&config, &arrivals).unwrap();
        let b = serve(&config, &arrivals).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.sessions, 12);
    }

    #[test]
    fn latency_and_queue_series_are_populated() {
        let config = WorkloadConfig {
            slots: 1, // maximum contention: everything queues
            ..WorkloadConfig::default()
        };
        let arrivals = small_stream();
        let out = serve(&config, &arrivals).unwrap();
        let r = &out.report;
        assert!(r.latency.p50 > 0.0);
        assert!(r.latency.p99 >= r.latency.p95 && r.latency.p95 >= r.latency.p50);
        assert!(!r.per_tenant.is_empty());
        assert!(r.per_tenant.iter().all(|t| t.sessions > 0));
        assert_eq!(
            r.per_tenant.iter().map(|t| t.sessions).sum::<usize>(),
            r.sessions
        );
        assert_eq!(r.queue_depth.len(), 3 * r.sessions);
        assert!(r.queue_depth_peak >= 1.0, "one slot must force queueing");
        assert!(r.queue_depth_mean > 0.0);
        assert!(r.makespan_secs > 0.0);
        assert!(r.max_cross_check_err_secs <= 1e-6);
        // Depth series never go negative and end drained.
        assert!(r.queue_depth.iter().all(|&(_, d)| d >= 0.0));
        assert_eq!(r.queue_depth.last().unwrap().1, 0.0);
        assert_eq!(r.in_service.last().unwrap().1, 0.0);
    }

    #[test]
    fn more_slots_never_increase_latency() {
        let arrivals = small_stream();
        let serve_slots = |slots| {
            serve(
                &WorkloadConfig {
                    slots,
                    ..WorkloadConfig::default()
                },
                &arrivals,
            )
            .unwrap()
            .report
        };
        let narrow = serve_slots(1);
        let wide = serve_slots(8);
        assert!(wide.latency.p99 <= narrow.latency.p99);
        assert!(wide.makespan_secs <= narrow.makespan_secs);
        // Service times are slot-independent.
        for (a, b) in narrow.records.iter().zip(&wide.records) {
            assert_eq!(a.ttc_secs, b.ttc_secs);
        }
    }

    #[test]
    fn federated_backend_serves_the_same_stream() {
        let config = WorkloadConfig {
            backend: StreamBackend::Federated { members: 2 },
            slots: 2,
            ..WorkloadConfig::default()
        };
        let arrivals = OpenLoopProcess::poisson(4, 6, 3, 60.0).generate().unwrap();
        let a = serve(&config, &arrivals).unwrap();
        let b = serve(&config, &arrivals).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.report.backend, "federated:2");
        assert!(a.report.max_cross_check_err_secs <= 1e-6);
    }

    #[test]
    fn stream_misuse_is_rejected() {
        let arrivals = small_stream();
        assert!(serve(&WorkloadConfig::default(), &[]).is_err());
        assert!(serve(
            &WorkloadConfig {
                slots: 0,
                ..WorkloadConfig::default()
            },
            &arrivals
        )
        .is_err());
        let mut unordered = arrivals.clone();
        let last = unordered.len() - 1;
        unordered.swap(0, last);
        assert!(serve(&WorkloadConfig::default(), &unordered).is_err());
        assert!(serve(
            &WorkloadConfig {
                backend: StreamBackend::Federated { members: 1 },
                ..WorkloadConfig::default()
            },
            &arrivals
        )
        .is_err());
    }
}
