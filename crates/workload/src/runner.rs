//! Stream-level record/report types and the FIFO `serve()` entry point.
//!
//! ## Model
//!
//! The stream is an open-loop queueing system at session granularity. The
//! shared backend exposes `slots` concurrent admission slots (think: how
//! many pilot sessions the resource provider lets one gateway run at
//! once). Admission is performed by the event-driven
//! [`crate::service::ServiceEngine`]; [`serve`] is the FIFO default —
//! arrival `i` starts at `max(arrival_i, k-th earliest slot-free time)`
//! and occupies its slot for its time-to-completion.
//!
//! Each admitted session runs through the existing
//! `SessionEngine`/`ExecutionBackend` seam (`run_simulated_traced` /
//! `run_federated_traced`) on its own virtual clock; its service time is
//! the session report's TTC. Because every simulated session starts from
//! its own t = 0, service times are independent of stream start times, so
//! the per-session evaluations are embarrassingly parallel — the service
//! fans them across cores in input order (same reassembly discipline as
//! `entk-bench`'s `SweepRunner`) while the admission loop itself stays
//! serial and deterministic. Same seed + same arrivals ⇒ byte-identical
//! JSONL and report.
//!
//! ## Failure semantics
//!
//! A failed or degraded session is recorded (`status: failed | partial`)
//! rather than aborting the stream; see the service module docs. Strict
//! stream-fatal semantics are available via
//! [`crate::service::ServiceConfig`].

use crate::arrival::IntoArrivalStream;
use crate::service::{ServiceConfig, ServiceEngine};
use entk_core::EntkError;
use entk_sim::{Metrics, SimTime};
use serde::{Deserialize, Serialize};

/// Gauge name of the arrived-but-not-started depth series.
pub const QUEUE_DEPTH_GAUGE: &str = "workload.queue_depth";
/// Gauge name of the admitted-and-running depth series.
pub const IN_SERVICE_GAUGE: &str = "workload.in_service";

/// Which shared backend the stream admits sessions onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBackend {
    /// One simulated cluster per session pilot.
    Simulated,
    /// Each session late-binds across `members` simulated clusters.
    Federated {
        /// Member clusters per session (>= 2).
        members: usize,
    },
}

impl StreamBackend {
    /// Stable label used in reports and bench rows.
    pub fn label(self) -> String {
        match self {
            StreamBackend::Simulated => "simulated".to_string(),
            StreamBackend::Federated { members } => format!("federated:{members}"),
        }
    }
}

/// Stream-level configuration of the workload runner.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Master seed; each session derives an independent sub-seed from it.
    pub seed: u64,
    /// Resource every session's pilot is acquired on.
    pub resource: String,
    /// Concurrent admission slots of the shared backend.
    pub slots: usize,
    /// Backend sessions run on.
    pub backend: StreamBackend,
    /// Per-unit failure-injection probability threaded into every
    /// session's backend (0 = clean runs; 1 forces every session to
    /// degrade to a partial result).
    pub unit_failure_rate: f64,
    /// Registered batch-scheduler plugin threaded into every session's
    /// backend (`None` keeps the backend's policy default).
    pub scheduler: Option<entk_core::ComponentSpec>,
    /// Retry / timeout fault policy threaded into every session's backend.
    pub fault: entk_core::FaultConfig,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 2016,
            resource: "xsede.stampede".to_string(),
            slots: 4,
            backend: StreamBackend::Simulated,
            unit_failure_rate: 0.0,
            scheduler: None,
            fault: entk_core::FaultConfig::default(),
        }
    }
}

/// Terminal status of one session in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SessionStatus {
    /// The session ran to completion.
    Ok,
    /// The session ran but degraded to a partial result (some tasks
    /// failed past their retry budget).
    Partial,
    /// The session's backend run failed outright; it consumed no service
    /// time.
    Failed,
    /// The admission queue was at its bound; the session was turned away
    /// with a typed `saturated` outcome and never ran.
    Rejected,
}

impl SessionStatus {
    /// Stable lowercase label used in the stream JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionStatus::Ok => "ok",
            SessionStatus::Partial => "partial",
            SessionStatus::Failed => "failed",
            SessionStatus::Rejected => "rejected",
        }
    }
}

/// Latency percentiles of one tenant (or of the whole stream).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantLatency {
    /// Tenant id; `u64::MAX` marks the all-tenants aggregate.
    pub tenant: u64,
    /// Served (ok or partial) sessions this tenant submitted.
    pub sessions: usize,
    /// Median latency (arrival → finish), seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
}

/// One session's stream-level outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Index in arrival order.
    pub session: usize,
    /// Owning tenant.
    pub tenant: u64,
    /// Pattern label.
    pub pattern: String,
    /// Terminal status (`ok | partial | failed | rejected`).
    pub status: SessionStatus,
    /// The underlying error for failed or rejected sessions.
    pub error: Option<String>,
    /// Arrival instant, seconds.
    pub arrival_secs: f64,
    /// Admission instant, seconds.
    pub start_secs: f64,
    /// Completion instant, seconds.
    pub finish_secs: f64,
    /// Arrival → finish, seconds.
    pub latency_secs: f64,
    /// The session's own time-to-completion (service time), seconds.
    pub ttc_secs: f64,
    /// Arrival instant, exact microseconds (the seconds fields above are
    /// display values; gauges and replay use these exact instants so no
    /// f64 round-trip can merge or reorder boundary ties).
    pub arrival_us: u64,
    /// Admission instant, exact microseconds.
    pub start_us: u64,
    /// Completion instant, exact microseconds.
    pub finish_us: u64,
    /// Tasks the session executed.
    pub tasks: usize,
    /// Simulator events the session processed.
    pub events: u64,
    /// FNV-1a 64 fingerprint of the session's JSONL event trace.
    pub trace_fp: String,
}

/// Aggregated stream report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadReport {
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Resource sessions ran on.
    pub resource: String,
    /// Master seed.
    pub seed: u64,
    /// Concurrent admission slots.
    pub slots: usize,
    /// Admission policy label (`fifo` or `fair-share`).
    pub policy: String,
    /// Sessions submitted (served + failed + rejected).
    pub sessions: usize,
    /// Distinct tenants observed.
    pub tenants: usize,
    /// Sessions that ran to completion.
    pub ok_sessions: usize,
    /// Sessions that degraded to a partial result.
    pub partial_sessions: usize,
    /// Sessions whose backend run failed.
    pub failed_sessions: usize,
    /// Sessions rejected by queue backpressure.
    pub rejected_sessions: usize,
    /// Total tasks across all sessions.
    pub total_tasks: usize,
    /// Total simulator events across all sessions.
    pub total_events: u64,
    /// Stream makespan: latest session finish, seconds.
    pub makespan_secs: f64,
    /// All-tenants latency percentiles (served sessions).
    pub latency: TenantLatency,
    /// Per-tenant latency percentiles, sorted by tenant id.
    pub per_tenant: Vec<TenantLatency>,
    /// Arrived-but-not-started depth over stream time (secs, depth).
    pub queue_depth: Vec<(f64, f64)>,
    /// Peak of the queue-depth series.
    pub queue_depth_peak: f64,
    /// Time-weighted mean of the queue-depth series.
    pub queue_depth_mean: f64,
    /// Admitted-and-running depth over stream time (secs, depth).
    pub in_service: Vec<(f64, f64)>,
    /// Largest per-session trace/accounting divergence, seconds. The
    /// cross-check gate (`<= 1e-6`) is asserted by benches and tests.
    pub max_cross_check_err_secs: f64,
    /// FNV-1a 64 fingerprint of the stream JSONL.
    pub stream_fp: String,
    /// Per-session records in arrival order.
    pub records: Vec<SessionRecord>,
}

/// A served stream: the report plus the stream JSONL (one line per
/// session, byte-identical under replay).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Aggregated report.
    pub report: WorkloadReport,
    /// One JSON line per session, in arrival order — always the full
    /// stream.
    pub jsonl: String,
    /// The lines the serving engine instance actually emitted: equal to
    /// `jsonl` for a fresh run, and exactly the post-checkpoint suffix for
    /// a restored run (prefix + suffix is byte-identical to `jsonl`).
    pub suffix_jsonl: String,
}

/// FNV-1a 64 over arbitrary bytes (same constants as the bench trace
/// fingerprints, so stream and session fingerprints are comparable).
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Folds more bytes into an FNV-1a 64 hash state. `fnv64(b"")` is the
/// initial state, so `fnv64_update(fnv64(a), b) == fnv64(a ++ b)` — the
/// streaming service uses this to fingerprint its emitted JSONL and its
/// ingested trace prefix without retaining either.
pub fn fnv64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders one session record as its stream JSONL line. Hand-rendered so
/// the stream JSONL is byte-stable by construction.
pub(crate) fn render_record(r: &SessionRecord) -> String {
    let error = match &r.error {
        Some(e) => format!(",\"error\":\"{}\"", escape_json(e)),
        None => String::new(),
    };
    format!(
        "{{\"session\":{},\"tenant\":{},\"pattern\":\"{}\",\"status\":\"{}\",\
         \"arrival\":{:.6},\"start\":{:.6},\"finish\":{:.6},\"latency\":{:.6},\
         \"ttc\":{:.6},\"tasks\":{},\"events\":{},\"trace_fp\":\"{}\"{}}}\n",
        r.session,
        r.tenant,
        r.pattern,
        r.status.as_str(),
        r.arrival_secs,
        r.start_secs,
        r.finish_secs,
        r.latency_secs,
        r.ttc_secs,
        r.tasks,
        r.events,
        r.trace_fp,
        error,
    )
}

/// Serves a stream of arrivals on the configured backend with FIFO
/// admission, an unbounded queue, and lenient failure semantics — the
/// historical entry point, now a thin wrapper over
/// [`crate::service::ServiceEngine`]. Accepts anything convertible to an
/// [`crate::arrival::ArrivalStream`]: a slice, a `Vec`, a boxed stream,
/// or a lazy generator. Deterministic: same config + same arrivals ⇒
/// byte-identical [`WorkloadOutcome`].
pub fn serve(
    config: &WorkloadConfig,
    arrivals: impl IntoArrivalStream,
) -> Result<WorkloadOutcome, EntkError> {
    ServiceEngine::new(ServiceConfig::fifo(config.clone()), arrivals)?.run()
}

/// Replays the admission timeline as gauge samples: queue depth counts
/// sessions that arrived but have not started; in-service counts sessions
/// between start and finish. Ties resolve finish → arrive → start so a
/// slot freed at `t` is visible to a session starting at `t`. Built from
/// the records' exact microsecond instants — never from the f64 display
/// seconds, whose round-trip rounds large instants and can merge or
/// reorder boundary ties (see `gauge_ties_survive_f64_collisions`).
/// Rejected sessions never enter either series; a zero-duration (failed)
/// session contributes no in-service blip.
pub(crate) fn record_depth_gauges(metrics: &mut Metrics, records: &[SessionRecord]) {
    // (micros, kind, delta_queued, delta_running); kind orders ties.
    let mut events: Vec<(u64, u8, i64, i64)> = Vec::with_capacity(records.len() * 3);
    for r in records {
        if r.status == SessionStatus::Rejected {
            continue;
        }
        events.push((r.arrival_us, 1, 1, 0));
        if r.finish_us > r.start_us {
            events.push((r.finish_us, 0, 0, -1));
            events.push((r.start_us, 2, -1, 1));
        } else {
            // Zero service time: leave the queue without a running blip.
            events.push((r.start_us, 2, -1, 0));
        }
    }
    events.sort_unstable();
    let (mut queued, mut running) = (0i64, 0i64);
    for (t, _, dq, dr) in events {
        queued += dq;
        running += dr;
        let at = SimTime::from_micros(t);
        metrics.gauge(QUEUE_DEPTH_GAUGE, at, queued as f64);
        metrics.gauge(IN_SERVICE_GAUGE, at, running as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{OpenLoopProcess, WorkloadGenerator};
    use entk_sim::SimDuration;

    fn small_stream() -> Vec<crate::SessionArrival> {
        OpenLoopProcess::poisson(9, 12, 4, 60.0).generate().unwrap()
    }

    #[test]
    fn serve_replays_byte_identically() {
        let config = WorkloadConfig {
            slots: 2,
            ..WorkloadConfig::default()
        };
        let arrivals = small_stream();
        let a = serve(&config, &arrivals).unwrap();
        let b = serve(&config, &arrivals).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.sessions, 12);
        assert_eq!(a.report.ok_sessions, 12);
        assert_eq!(a.report.policy, "fifo");
        assert_eq!(a.suffix_jsonl, a.jsonl, "a fresh run emits the full stream");
    }

    #[test]
    fn latency_and_queue_series_are_populated() {
        let config = WorkloadConfig {
            slots: 1, // maximum contention: everything queues
            ..WorkloadConfig::default()
        };
        let arrivals = small_stream();
        let out = serve(&config, &arrivals).unwrap();
        let r = &out.report;
        assert!(r.latency.p50 > 0.0);
        assert!(r.latency.p99 >= r.latency.p95 && r.latency.p95 >= r.latency.p50);
        assert!(!r.per_tenant.is_empty());
        assert!(r.per_tenant.iter().all(|t| t.sessions > 0));
        assert_eq!(
            r.per_tenant.iter().map(|t| t.sessions).sum::<usize>(),
            r.sessions
        );
        assert_eq!(r.queue_depth.len(), 3 * r.sessions);
        assert!(r.queue_depth_peak >= 1.0, "one slot must force queueing");
        assert!(r.queue_depth_mean > 0.0);
        assert!(r.makespan_secs > 0.0);
        assert!(r.max_cross_check_err_secs <= 1e-6);
        // Depth series never go negative and end drained.
        assert!(r.queue_depth.iter().all(|&(_, d)| d >= 0.0));
        assert_eq!(r.queue_depth.last().unwrap().1, 0.0);
        assert_eq!(r.in_service.last().unwrap().1, 0.0);
    }

    #[test]
    fn more_slots_never_increase_latency() {
        let arrivals = small_stream();
        let serve_slots = |slots| {
            serve(
                &WorkloadConfig {
                    slots,
                    ..WorkloadConfig::default()
                },
                &arrivals,
            )
            .unwrap()
            .report
        };
        let narrow = serve_slots(1);
        let wide = serve_slots(8);
        assert!(wide.latency.p99 <= narrow.latency.p99);
        assert!(wide.makespan_secs <= narrow.makespan_secs);
        // Service times are slot-independent.
        for (a, b) in narrow.records.iter().zip(&wide.records) {
            assert_eq!(a.ttc_secs, b.ttc_secs);
        }
    }

    #[test]
    fn federated_backend_serves_the_same_stream() {
        let config = WorkloadConfig {
            backend: StreamBackend::Federated { members: 2 },
            slots: 2,
            ..WorkloadConfig::default()
        };
        let arrivals = OpenLoopProcess::poisson(4, 6, 3, 60.0).generate().unwrap();
        let a = serve(&config, &arrivals).unwrap();
        let b = serve(&config, &arrivals).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.report.backend, "federated:2");
        assert!(a.report.max_cross_check_err_secs <= 1e-6);
    }

    #[test]
    fn stream_misuse_is_rejected() {
        let arrivals = small_stream();
        assert!(serve(
            &WorkloadConfig::default(),
            Vec::<crate::SessionArrival>::new()
        )
        .is_err());
        assert!(serve(
            &WorkloadConfig {
                slots: 0,
                ..WorkloadConfig::default()
            },
            &arrivals
        )
        .is_err());
        let mut unordered = arrivals.clone();
        let last = unordered.len() - 1;
        unordered.swap(0, last);
        assert!(serve(&WorkloadConfig::default(), &unordered).is_err());
        assert!(serve(
            &WorkloadConfig {
                backend: StreamBackend::Federated { members: 1 },
                ..WorkloadConfig::default()
            },
            &arrivals
        )
        .is_err());
    }

    fn record_at(session: usize, arrival_us: u64, start_us: u64, finish_us: u64) -> SessionRecord {
        SessionRecord {
            session,
            tenant: 0,
            pattern: "eop".into(),
            status: SessionStatus::Ok,
            error: None,
            arrival_secs: SimTime::from_micros(arrival_us).as_secs_f64(),
            start_secs: SimTime::from_micros(start_us).as_secs_f64(),
            finish_secs: SimTime::from_micros(finish_us).as_secs_f64(),
            latency_secs: 0.0,
            ttc_secs: 0.0,
            arrival_us,
            start_us,
            finish_us,
            tasks: 1,
            events: 1,
            trace_fp: format!("{:016x}", 0u64),
        }
    }

    #[test]
    fn gauge_ties_survive_f64_collisions() {
        // Above ~2^51 µs, the micros → f64-seconds → micros round-trip the
        // gauges used to take is lossy: 8944849571992850 µs rounds onto
        // 8944849571992849 µs. A finish at the former must not collapse
        // onto an arrival at the latter — the kind tie-break would then
        // wrongly order the finish *before* the arrival. The exact-micros
        // path keeps the two instants distinct.
        let f = 8_944_849_571_992_850u64;
        let lossy = SimDuration::from_secs_f64(SimTime::from_micros(f).as_secs_f64()).as_micros();
        assert_eq!(
            lossy,
            f - 1,
            "the chosen instant must exhibit the collision"
        );

        // Session 0 finishes at f; session 1 arrives at f - 1 and starts
        // at f (when the slot frees).
        let records = vec![record_at(0, 0, 0, f), record_at(1, f - 1, f, f + 10)];
        let mut metrics = Metrics::new();
        record_depth_gauges(&mut metrics, &records);
        let queue: Vec<(u64, f64)> = metrics
            .series(QUEUE_DEPTH_GAUGE)
            .unwrap()
            .points()
            .iter()
            .map(|&(t, v)| (t.as_micros(), v))
            .collect();
        // Arrival at f-1 must register depth 1 at its own (exact) instant,
        // strictly before the finish/start pair at f.
        assert!(
            queue.contains(&(f - 1, 1.0)),
            "arrival instant preserved: {queue:?}"
        );
        assert!(
            queue.iter().any(|&(t, _)| t == f),
            "finish/start pair stays at its exact instant: {queue:?}"
        );
        // Depth never dips negative (the collapsed ordering used to make
        // the start precede the arrival at the merged instant).
        assert!(queue.iter().all(|&(_, d)| d >= 0.0), "{queue:?}");
    }
}
