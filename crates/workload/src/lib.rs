//! # entk-workload — trace-driven open-loop workload layer
//!
//! Everything below this crate runs *one* session: a pattern, a resource,
//! a report. This crate pivots the toolkit from "run a pattern" to "serve
//! a stream": seeded arrival processes and CSV traces describe thousands
//! of tenants submitting heterogeneous ensemble sessions (EoP / SAL / EE /
//! PST, varied shapes and kernels), and a deterministic stream runner
//! admits them onto the simulated or federated backend through the
//! existing `SessionEngine` / `ExecutionBackend` seam.
//!
//! Three [`WorkloadGenerator`] implementations:
//!
//! 1. [`OpenLoopProcess`] — seeded Poisson or bursty arrivals over a
//!    tenant population;
//! 2. [`CsvTrace`] — an Alibaba/Google-style CSV schema
//!    (`arrival_time,tenant,pattern,tasks,stages,kernel,cores`);
//! 3. [`SyntheticTrace`] — an in-repo deterministic mixture whose CSV
//!    rendering means CI never needs external trace data.
//!
//! The session service ([`ServiceEngine`], FIFO default via [`serve`])
//! admits the stream through a live event-driven loop with pluggable
//! policies — FIFO or fair-share over a per-tenant [usage ledger]
//! (entk_cluster::UsageLedger) — bounded-queue backpressure (reject or
//! defer), per-session failure records (`ok | partial | failed |
//! rejected`, never stream-fatal unless `strict`), and arrival-boundary
//! checkpoint/restore. It reports per-tenant latency percentiles,
//! queue-depth time series from the telemetry gauges, and makespan under
//! contention. Determinism is end to end: same seed or trace ⇒
//! byte-identical stream JSONL and report — including across a
//! checkpoint/resume, which replays to a byte-identical suffix — with
//! every admitted session's own event trace fingerprinted and
//! cross-checked against its overhead accounting.

#![warn(missing_docs)]

pub mod arrival;
pub mod runner;
pub mod service;
pub mod sink;
pub mod spec;
pub mod trace;

pub use arrival::{
    ArrivalProcess, ArrivalStream, IntoArrivalStream, OpenLoopProcess, PatternKind, SessionArrival,
    VecStream, WorkloadGenerator, SUPPORTED_KERNELS,
};
pub use runner::{
    fnv64, fnv64_update, serve, SessionRecord, SessionStatus, StreamBackend, TenantLatency,
    WorkloadConfig, WorkloadOutcome, WorkloadReport, IN_SERVICE_GAUGE, QUEUE_DEPTH_GAUGE,
};
pub use service::{
    admission_policies, session_seed, AdmissionPolicy, AdmissionSample, EngineOptions,
    SaturationMode, ServeStats, ServiceCheckpoint, ServiceConfig, ServiceEngine,
};
pub use sink::{dispatch, sinks, GaugesSink, JsonlSink, ReportSink, SummarySink};
pub use spec::{sources, SourceCtx, SourceDecl, StreamSpec};
pub use trace::{
    parse_trace, render_trace, CsvStream, CsvTrace, HotTenantTrace, SyntheticTrace, TRACE_HEADER,
};
