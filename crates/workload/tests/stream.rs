//! End-to-end stream tests: the synthetic trace served on both backends,
//! with replay identity, cross-check budgets, and populated reports.

use entk_workload::{
    parse_trace, serve, StreamBackend, StreamSpec, SyntheticTrace, WorkloadConfig,
    WorkloadGenerator,
};

fn small_config(backend: StreamBackend) -> WorkloadConfig {
    WorkloadConfig {
        seed: 2016,
        resource: "xsede.stampede".into(),
        slots: 2,
        backend,
    }
}

#[test]
fn synthetic_stream_replays_identically_on_simulated_backend() {
    let arrivals = SyntheticTrace::new(11, 10, 4).generate().unwrap();
    let config = small_config(StreamBackend::Simulated);
    let a = serve(&config, &arrivals).unwrap();
    let b = serve(&config, &arrivals).unwrap();
    assert_eq!(a.jsonl, b.jsonl, "stream JSONL must be byte-identical");
    assert_eq!(a.report.stream_fp, b.report.stream_fp);
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "serialized report must be byte-identical"
    );
}

#[test]
fn synthetic_stream_replays_identically_on_federated_backend() {
    let arrivals = SyntheticTrace::new(11, 6, 3).generate().unwrap();
    let config = small_config(StreamBackend::Federated { members: 2 });
    let a = serve(&config, &arrivals).unwrap();
    let b = serve(&config, &arrivals).unwrap();
    assert_eq!(a.jsonl, b.jsonl);
    assert_eq!(a.report.backend, "federated:2");
    assert_eq!(a.report.stream_fp, b.report.stream_fp);
}

#[test]
fn served_stream_reports_are_fully_populated() {
    let arrivals = SyntheticTrace::new(5, 12, 4).generate().unwrap();
    let out = serve(&small_config(StreamBackend::Simulated), &arrivals).unwrap();
    let r = &out.report;
    assert_eq!(r.sessions, 12);
    assert!(r.tenants >= 1 && r.tenants <= 4);
    assert!(r.total_tasks > 0);
    assert!(r.total_events > 0);
    assert!(r.makespan_secs > 0.0);
    assert!(r.max_cross_check_err_secs <= 1e-6, "cross-check budget");
    // Aggregate latency percentiles are ordered and positive.
    assert!(r.latency.p50 > 0.0);
    assert!(r.latency.p50 <= r.latency.p95);
    assert!(r.latency.p95 <= r.latency.p99);
    // Per-tenant rows cover every tenant seen in the stream, sorted.
    assert_eq!(r.per_tenant.len(), r.tenants);
    for w in r.per_tenant.windows(2) {
        assert!(w[0].tenant < w[1].tenant);
    }
    assert_eq!(
        r.per_tenant.iter().map(|t| t.sessions).sum::<usize>(),
        r.sessions
    );
    // Queue depth series starts populated and drains to zero.
    assert!(!r.queue_depth.is_empty());
    assert_eq!(r.queue_depth.last().unwrap().1, 0.0);
    assert!(r.queue_depth_peak >= 0.0);
    // One record and one JSONL line per session.
    assert_eq!(r.records.len(), r.sessions);
    assert_eq!(out.jsonl.lines().count(), r.sessions);
}

#[test]
fn synthetic_trace_csv_serves_the_same_stream_as_the_generator() {
    let synth = SyntheticTrace::new(9, 8, 3);
    let direct = synth.generate().unwrap();
    let via_csv = parse_trace(&synth.to_csv().unwrap()).unwrap();
    assert_eq!(direct, via_csv);
    let config = small_config(StreamBackend::Simulated);
    let a = serve(&config, &direct).unwrap();
    let b = serve(&config, &via_csv).unwrap();
    assert_eq!(a.jsonl, b.jsonl);
}

#[test]
fn spec_driven_run_matches_direct_serve() {
    let text = r#"{
        "seed": 11,
        "slots": 2,
        "source": { "kind": "synthetic", "sessions": 10, "tenants": 4 }
    }"#;
    let via_spec = StreamSpec::from_json(text).unwrap().run().unwrap();
    let arrivals = SyntheticTrace::new(11, 10, 4).generate().unwrap();
    let config = WorkloadConfig {
        seed: 11,
        ..small_config(StreamBackend::Simulated)
    };
    let direct = serve(&config, &arrivals).unwrap();
    assert_eq!(via_spec.jsonl, direct.jsonl);
    assert_eq!(via_spec.report.stream_fp, direct.report.stream_fp);
}
