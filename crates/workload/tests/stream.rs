//! End-to-end stream tests: the synthetic trace served on both backends,
//! with replay identity, cross-check budgets, populated reports,
//! per-session failure semantics, backpressure, and checkpoint/restore.

use entk_workload::{
    parse_trace, serve, SaturationMode, ServiceCheckpoint, ServiceConfig, ServiceEngine,
    SessionStatus, StreamBackend, StreamSpec, SyntheticTrace, WorkloadConfig, WorkloadGenerator,
};

fn small_config(backend: StreamBackend) -> WorkloadConfig {
    WorkloadConfig {
        seed: 2016,
        resource: "xsede.stampede".into(),
        slots: 2,
        backend,
        unit_failure_rate: 0.0,
        ..WorkloadConfig::default()
    }
}

#[test]
fn synthetic_stream_replays_identically_on_simulated_backend() {
    let arrivals = SyntheticTrace::new(11, 10, 4).generate().unwrap();
    let config = small_config(StreamBackend::Simulated);
    let a = serve(&config, &arrivals).unwrap();
    let b = serve(&config, &arrivals).unwrap();
    assert_eq!(a.jsonl, b.jsonl, "stream JSONL must be byte-identical");
    assert_eq!(a.report.stream_fp, b.report.stream_fp);
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "serialized report must be byte-identical"
    );
}

#[test]
fn synthetic_stream_replays_identically_on_federated_backend() {
    let arrivals = SyntheticTrace::new(11, 6, 3).generate().unwrap();
    let config = small_config(StreamBackend::Federated { members: 2 });
    let a = serve(&config, &arrivals).unwrap();
    let b = serve(&config, &arrivals).unwrap();
    assert_eq!(a.jsonl, b.jsonl);
    assert_eq!(a.report.backend, "federated:2");
    assert_eq!(a.report.stream_fp, b.report.stream_fp);
}

#[test]
fn served_stream_reports_are_fully_populated() {
    let arrivals = SyntheticTrace::new(5, 12, 4).generate().unwrap();
    let out = serve(&small_config(StreamBackend::Simulated), &arrivals).unwrap();
    let r = &out.report;
    assert_eq!(r.sessions, 12);
    assert!(r.tenants >= 1 && r.tenants <= 4);
    assert!(r.total_tasks > 0);
    assert!(r.total_events > 0);
    assert!(r.makespan_secs > 0.0);
    assert!(r.max_cross_check_err_secs <= 1e-6, "cross-check budget");
    // Aggregate latency percentiles are ordered and positive.
    assert!(r.latency.p50 > 0.0);
    assert!(r.latency.p50 <= r.latency.p95);
    assert!(r.latency.p95 <= r.latency.p99);
    // Per-tenant rows cover every tenant seen in the stream, sorted.
    assert_eq!(r.per_tenant.len(), r.tenants);
    for w in r.per_tenant.windows(2) {
        assert!(w[0].tenant < w[1].tenant);
    }
    assert_eq!(
        r.per_tenant.iter().map(|t| t.sessions).sum::<usize>(),
        r.sessions
    );
    // Queue depth series starts populated and drains to zero.
    assert!(!r.queue_depth.is_empty());
    assert_eq!(r.queue_depth.last().unwrap().1, 0.0);
    assert!(r.queue_depth_peak >= 0.0);
    // One record and one JSONL line per session.
    assert_eq!(r.records.len(), r.sessions);
    assert_eq!(out.jsonl.lines().count(), r.sessions);
}

#[test]
fn synthetic_trace_csv_serves_the_same_stream_as_the_generator() {
    let synth = SyntheticTrace::new(9, 8, 3);
    let direct = synth.generate().unwrap();
    let via_csv = parse_trace(&synth.to_csv().unwrap()).unwrap();
    assert_eq!(direct, via_csv);
    let config = small_config(StreamBackend::Simulated);
    let a = serve(&config, &direct).unwrap();
    let b = serve(&config, &via_csv).unwrap();
    assert_eq!(a.jsonl, b.jsonl);
}

#[test]
fn spec_driven_run_matches_direct_serve() {
    let text = r#"{
        "seed": 11,
        "slots": 2,
        "source": { "kind": "synthetic", "sessions": 10, "tenants": 4 }
    }"#;
    let via_spec = StreamSpec::from_json(text).unwrap().run().unwrap();
    let arrivals = SyntheticTrace::new(11, 10, 4).generate().unwrap();
    let config = WorkloadConfig {
        seed: 11,
        ..small_config(StreamBackend::Simulated)
    };
    let direct = serve(&config, &arrivals).unwrap();
    assert_eq!(via_spec.jsonl, direct.jsonl);
    assert_eq!(via_spec.report.stream_fp, direct.report.stream_fp);
}

#[test]
fn failed_sessions_are_recorded_without_killing_the_stream() {
    // An impossible core request fails that session's backend run; the
    // stream must carry it as a `failed` record and keep serving.
    let mut arrivals = SyntheticTrace::new(7, 8, 3).generate().unwrap();
    arrivals[3].cores = 1_000_000_000;
    let out = serve(&small_config(StreamBackend::Simulated), &arrivals).unwrap();
    let r = &out.report;
    assert_eq!(r.sessions, 8);
    assert_eq!(r.failed_sessions, 1);
    assert_eq!(r.ok_sessions, 7);
    let failed = &r.records[3];
    assert_eq!(failed.status, SessionStatus::Failed);
    assert!(failed.error.as_deref().unwrap().contains("resource error"));
    assert_eq!(failed.ttc_secs, 0.0);
    assert_eq!(failed.tasks, 0);
    assert!(out
        .jsonl
        .lines()
        .nth(3)
        .unwrap()
        .contains("\"status\":\"failed\""));
    // The failed session contributes no latency sample.
    assert_eq!(r.per_tenant.iter().map(|t| t.sessions).sum::<usize>(), 7);
}

#[test]
fn strict_mode_restores_stream_fatal_failures() {
    let mut arrivals = SyntheticTrace::new(7, 8, 3).generate().unwrap();
    arrivals[3].cores = 1_000_000_000;
    let config = ServiceConfig {
        strict: true,
        ..ServiceConfig::fifo(small_config(StreamBackend::Simulated))
    };
    let err = ServiceEngine::new(config, &arrivals)
        .unwrap()
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("resource error"), "{err}");
}

#[test]
fn degraded_sessions_are_recorded_as_partial() {
    let stream = WorkloadConfig {
        unit_failure_rate: 1.0,
        ..small_config(StreamBackend::Simulated)
    };
    let arrivals = SyntheticTrace::new(7, 4, 2).generate().unwrap();
    let out = serve(&stream, &arrivals).unwrap();
    assert_eq!(out.report.partial_sessions, 4);
    assert_eq!(out.report.ok_sessions, 0);
    assert!(out
        .report
        .records
        .iter()
        .all(|r| r.status == SessionStatus::Partial && r.ttc_secs > 0.0));
    // Partial sessions still serve and still count toward latency.
    assert!(out.report.latency.p50 > 0.0);

    let strict = ServiceConfig {
        strict: true,
        ..ServiceConfig::fifo(stream)
    };
    let err = ServiceEngine::new(strict, &arrivals)
        .unwrap()
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("partial"), "{err}");
}

#[test]
fn bounded_queue_rejects_past_the_bound_with_saturated_outcomes() {
    let config = ServiceConfig {
        max_queue_depth: Some(1),
        saturation: SaturationMode::Reject,
        ..ServiceConfig::fifo(WorkloadConfig {
            slots: 1,
            ..small_config(StreamBackend::Simulated)
        })
    };
    let arrivals = SyntheticTrace::new(3, 16, 4).generate().unwrap();
    let out = ServiceEngine::new(config, &arrivals)
        .unwrap()
        .run()
        .unwrap();
    let r = &out.report;
    assert!(r.rejected_sessions > 0, "a burst must overflow depth 1");
    assert_eq!(r.rejected_sessions + r.ok_sessions, 16);
    assert!(
        r.queue_depth_peak <= 1.0,
        "rejection keeps the queue at its bound (peak {})",
        r.queue_depth_peak
    );
    for rec in r
        .records
        .iter()
        .filter(|r| r.status == SessionStatus::Rejected)
    {
        assert!(rec.error.as_deref().unwrap().starts_with("saturated:"));
        assert_eq!(rec.ttc_secs, 0.0);
        assert_eq!(rec.start_us, rec.arrival_us);
    }
    // Rejection is per-session, never stream-fatal: replay is identical.
    let again = ServiceEngine::new(
        ServiceConfig {
            max_queue_depth: Some(1),
            saturation: SaturationMode::Reject,
            ..ServiceConfig::fifo(WorkloadConfig {
                slots: 1,
                ..small_config(StreamBackend::Simulated)
            })
        },
        &arrivals,
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(out.jsonl, again.jsonl);
}

#[test]
fn deferred_arrivals_are_eventually_served() {
    let config = ServiceConfig {
        max_queue_depth: Some(1),
        saturation: SaturationMode::Defer,
        ..ServiceConfig::fifo(WorkloadConfig {
            slots: 1,
            ..small_config(StreamBackend::Simulated)
        })
    };
    let arrivals = SyntheticTrace::new(3, 16, 4).generate().unwrap();
    let out = ServiceEngine::new(config, &arrivals)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.report.rejected_sessions, 0);
    assert_eq!(out.report.ok_sessions, 16);
    // FIFO + defer serves in arrival order, so the outcome matches the
    // unbounded queue exactly.
    let unbounded = serve(
        &WorkloadConfig {
            slots: 1,
            ..small_config(StreamBackend::Simulated)
        },
        &arrivals,
    )
    .unwrap();
    assert_eq!(out.jsonl, unbounded.jsonl);
}

#[test]
fn kill_mid_stream_and_resume_replays_a_byte_identical_suffix() {
    let arrivals = SyntheticTrace::new(13, 12, 4).generate().unwrap();
    let config = ServiceConfig::fair_share(small_config(StreamBackend::Simulated), 300.0);

    let full = ServiceEngine::new(config.clone(), &arrivals)
        .unwrap()
        .run()
        .unwrap();

    // "Kill" the service at the mid-stream arrival boundary: keep only
    // what it checkpointed and what it had already emitted.
    let mut victim = ServiceEngine::new(config.clone(), &arrivals).unwrap();
    victim.run_to_boundary(6).unwrap();
    let prefix = victim.emitted_jsonl().to_string();
    let ckpt_json = victim.checkpoint().to_json();
    drop(victim);

    let ckpt = ServiceCheckpoint::from_json(&ckpt_json).unwrap();
    assert_eq!(ckpt.next_arrival, 6);
    let resumed = ServiceEngine::restore(config, &arrivals, &ckpt)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        format!("{prefix}{}", resumed.suffix_jsonl),
        full.jsonl,
        "prefix + resumed suffix must be byte-identical to the uninterrupted stream"
    );
    assert_eq!(resumed.report.stream_fp, full.report.stream_fp);
    assert_eq!(resumed.report, full.report);
}

#[test]
fn checkpoints_refuse_mismatched_configs_and_streams() {
    let arrivals = SyntheticTrace::new(13, 8, 3).generate().unwrap();
    let config = ServiceConfig::fifo(small_config(StreamBackend::Simulated));
    let mut engine = ServiceEngine::new(config.clone(), &arrivals).unwrap();
    engine.run_to_boundary(4).unwrap();
    let ckpt = engine.checkpoint();

    let wrong_seed = ServiceConfig::fifo(WorkloadConfig {
        seed: 999,
        ..small_config(StreamBackend::Simulated)
    });
    let err = ServiceEngine::restore(wrong_seed, &arrivals, &ckpt).unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");

    let wrong_policy = ServiceConfig::fair_share(small_config(StreamBackend::Simulated), 60.0);
    let err = ServiceEngine::restore(wrong_policy, &arrivals, &ckpt).unwrap_err();
    assert!(err.to_string().contains("policy"), "{err}");

    let other_arrivals = SyntheticTrace::new(14, 8, 3).generate().unwrap();
    let err = ServiceEngine::restore(config, &other_arrivals, &ckpt).unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

#[test]
fn streamed_serve_is_byte_identical_to_the_buffered_serve() {
    // run_streaming drops every record after rendering it, yet the sink
    // bytes, fingerprint, and scalar stats must match the buffered run.
    for backend in [
        StreamBackend::Simulated,
        StreamBackend::Federated { members: 2 },
    ] {
        let synth = SyntheticTrace::new(11, 10, 4);
        let config = ServiceConfig::fifo(small_config(backend));
        let buffered = ServiceEngine::new(config.clone(), synth.stream().unwrap())
            .unwrap()
            .run()
            .unwrap();
        let mut sink = Vec::new();
        let stats = ServiceEngine::new(config, synth.stream().unwrap())
            .unwrap()
            .run_streaming(&mut sink)
            .unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), buffered.jsonl);
        assert_eq!(stats.stream_fp, buffered.report.stream_fp);
        assert_eq!(stats.sessions, buffered.report.sessions);
        assert_eq!(stats.tenants, buffered.report.tenants);
        assert_eq!(stats.ok_sessions, buffered.report.ok_sessions);
        assert_eq!(stats.total_events, buffered.report.total_events);
        assert_eq!(stats.makespan_secs, buffered.report.makespan_secs);
        assert_eq!(stats.jsonl_bytes, buffered.jsonl.len() as u64);
        assert!(stats.peak_resident_sessions >= 1);
    }
}

#[test]
fn streamed_serve_residency_is_bounded_by_lookahead_and_queue() {
    use entk_workload::EngineOptions;
    // With a tight look-ahead window and an unsaturated FIFO queue, peak
    // residency must stay far below the stream length.
    let synth = SyntheticTrace::new(5, 64, 8);
    let config = ServiceConfig::fifo(WorkloadConfig {
        slots: 4,
        ..small_config(StreamBackend::Simulated)
    });
    let options = EngineOptions {
        lookahead: 4,
        ..EngineOptions::default()
    };
    let mut sink = Vec::new();
    let stats = ServiceEngine::with_options(config, synth.stream().unwrap(), options)
        .unwrap()
        .run_streaming(&mut sink)
        .unwrap();
    assert_eq!(stats.sessions, 64);
    assert!(
        stats.peak_resident_sessions < 64,
        "peak residency {} must not scale with the stream",
        stats.peak_resident_sessions
    );
}

#[test]
fn streaming_knobs_cannot_change_the_output() {
    use entk_workload::EngineOptions;
    let synth = SyntheticTrace::new(11, 10, 4);
    let config = ServiceConfig::fifo(small_config(StreamBackend::Simulated));
    let baseline = ServiceEngine::new(config.clone(), synth.stream().unwrap())
        .unwrap()
        .run()
        .unwrap();
    for lookahead in [1, 3, 1024] {
        for eval_workers in [1, 2] {
            let options = EngineOptions {
                lookahead,
                eval_workers,
            };
            let out = ServiceEngine::with_options(config.clone(), synth.stream().unwrap(), options)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                out.jsonl, baseline.jsonl,
                "lookahead={lookahead} eval_workers={eval_workers} changed the stream"
            );
        }
    }
}

#[test]
fn fair_share_reorders_a_hot_tenant_burst() {
    use entk_workload::HotTenantTrace;
    let arrivals = HotTenantTrace::new(21, 24, 4).generate().unwrap();
    let stream = WorkloadConfig {
        slots: 1,
        ..small_config(StreamBackend::Simulated)
    };
    let fifo = ServiceEngine::new(ServiceConfig::fifo(stream.clone()), &arrivals)
        .unwrap()
        .run()
        .unwrap();
    let mut engine =
        ServiceEngine::new(ServiceConfig::fair_share(stream, 600.0), &arrivals).unwrap();
    let fair = engine.run().unwrap();
    assert_eq!(fair.report.policy, "fair-share");
    assert_ne!(
        fifo.jsonl, fair.jsonl,
        "the hot tenant burst must be reordered"
    );
    // The fairness invariant: no admitted tenant was above the share of a
    // tenant left waiting.
    for s in engine.admissions() {
        if let Some(min_waiting) = s.min_waiting_usage {
            assert!(
                s.admitted_usage <= min_waiting + 1e-9,
                "session {} (tenant {}) admitted at usage {} over a waiting tenant at {}",
                s.session,
                s.tenant,
                s.admitted_usage,
                min_waiting
            );
        }
    }
    // Light tenants (ids >= 1) should not be worse off under fair-share.
    let light_p99 = |r: &entk_workload::WorkloadReport| {
        r.per_tenant
            .iter()
            .filter(|t| t.tenant >= 1)
            .map(|t| t.p99)
            .fold(0.0f64, f64::max)
    };
    assert!(
        light_p99(&fair.report) <= light_p99(&fifo.report),
        "worst light-tenant p99 must not regress under fair-share \
         (fair {} vs fifo {})",
        light_p99(&fair.report),
        light_p99(&fifo.report)
    );
}
