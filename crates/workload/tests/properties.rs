//! Property tests: a generated stream of valid arrivals survives the
//! CSV render → parse round-trip exactly.

use entk_sim::{SimDuration, SimTime};
use entk_workload::{parse_trace, render_trace, PatternKind, SessionArrival, SUPPORTED_KERNELS};
use proptest::prelude::*;

/// Builds a sorted, schema-valid arrival list from raw draws: each draw is
/// (gap_µs, tenant, selector, cores); pattern shape and kernel derive from
/// the selector.
fn arrivals_from_draws(draws: &[(u64, u64, u64, usize)]) -> Vec<SessionArrival> {
    let mut clock = SimTime::ZERO;
    draws
        .iter()
        .map(|&(gap_us, tenant, sel, cores)| {
            clock += SimDuration::from_secs_f64(gap_us as f64 * 1e-6);
            SessionArrival {
                arrival: clock,
                tenant,
                pattern: PatternKind::ALL[(sel % 4) as usize],
                tasks: 1 + (sel / 4 % 16) as usize,
                stages: 1 + (sel / 64 % 4) as usize,
                kernel: SUPPORTED_KERNELS[(sel / 256) as usize % SUPPORTED_KERNELS.len()]
                    .to_string(),
                cores,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generate_render_parse_round_trips(
        draws in proptest::collection::vec(
            (0u64..120_000_000, 0u64..10_000, 0u64..1_000_000, 1usize..256),
            1..40,
        )
    ) {
        let rows = arrivals_from_draws(&draws);
        let csv = render_trace(&rows);
        let parsed = parse_trace(&csv).expect("rendered trace must parse");
        prop_assert_eq!(parsed, rows);
    }

    #[test]
    fn rendered_traces_replay_identically(
        draws in proptest::collection::vec(
            (0u64..60_000_000, 0u64..100, 0u64..1_000_000, 1usize..64),
            1..20,
        )
    ) {
        let rows = arrivals_from_draws(&draws);
        let a = render_trace(&rows);
        let b = render_trace(&rows);
        prop_assert_eq!(a, b);
    }
}
