//! Property tests: a generated stream of valid arrivals survives the
//! CSV render → parse round-trip exactly; the event-driven service
//! matches the FIFO admission-recursion oracle, upholds the fair-share
//! invariant, respects queue bounds, and checkpoint/restores exactly at
//! every arrival boundary.

use entk_sim::{SimDuration, SimTime};
use entk_workload::{
    parse_trace, render_trace, serve, PatternKind, SaturationMode, ServiceCheckpoint,
    ServiceConfig, ServiceEngine, SessionArrival, WorkloadConfig, SUPPORTED_KERNELS,
};
use proptest::prelude::*;

/// Builds a sorted, schema-valid arrival list from raw draws: each draw is
/// (gap_µs, tenant, selector, cores); pattern shape and kernel derive from
/// the selector.
fn arrivals_from_draws(draws: &[(u64, u64, u64, usize)]) -> Vec<SessionArrival> {
    let mut clock = SimTime::ZERO;
    draws
        .iter()
        .map(|&(gap_us, tenant, sel, cores)| {
            clock += SimDuration::from_secs_f64(gap_us as f64 * 1e-6);
            SessionArrival {
                arrival: clock,
                tenant,
                pattern: PatternKind::ALL[(sel % 4) as usize],
                tasks: 1 + (sel / 4 % 16) as usize,
                stages: 1 + (sel / 64 % 4) as usize,
                kernel: SUPPORTED_KERNELS[(sel / 256) as usize % SUPPORTED_KERNELS.len()]
                    .to_string(),
                cores,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generate_render_parse_round_trips(
        draws in proptest::collection::vec(
            (0u64..120_000_000, 0u64..10_000, 0u64..1_000_000, 1usize..256),
            1..40,
        )
    ) {
        let rows = arrivals_from_draws(&draws);
        let csv = render_trace(&rows);
        let parsed = parse_trace(&csv).expect("rendered trace must parse");
        prop_assert_eq!(parsed, rows);
    }

    #[test]
    fn rendered_traces_replay_identically(
        draws in proptest::collection::vec(
            (0u64..60_000_000, 0u64..100, 0u64..1_000_000, 1usize..64),
            1..20,
        )
    ) {
        let rows = arrivals_from_draws(&draws);
        let a = render_trace(&rows);
        let b = render_trace(&rows);
        prop_assert_eq!(a, b);
    }
}

/// Cheap evaluation draws: tiny sessions on the sleep kernel, so the
/// service-evaluation cost of the queueing properties stays trivial.
fn cheap_arrivals(draws: &[(u64, u64, usize)]) -> Vec<SessionArrival> {
    let mut clock = SimTime::ZERO;
    draws
        .iter()
        .map(|&(gap_us, tenant, cores)| {
            clock += SimDuration::from_secs_f64(gap_us as f64 * 1e-6);
            SessionArrival {
                arrival: clock,
                tenant,
                pattern: PatternKind::Eop,
                tasks: 1 + (cores % 3),
                stages: 1,
                kernel: "misc.sleep".to_string(),
                cores: 1 + cores % 16,
            }
        })
        .collect()
}

/// The original `serve()` admission recursion, kept as the FIFO oracle:
/// arrival `i` starts at `max(arrival_i, k-th earliest slot-free time)`.
fn fifo_oracle(arrivals: &[SessionArrival], ttcs_us: &[u64], slots: usize) -> Vec<(u64, u64)> {
    let mut free: std::collections::BinaryHeap<std::cmp::Reverse<u64>> =
        (0..slots).map(|_| std::cmp::Reverse(0)).collect();
    arrivals
        .iter()
        .zip(ttcs_us)
        .map(|(a, &ttc)| {
            let std::cmp::Reverse(avail) = free.pop().expect("slots >= 1");
            let start = a.arrival.as_micros().max(avail);
            let finish = start + ttc;
            free.push(std::cmp::Reverse(finish));
            (start, finish)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn event_driven_fifo_matches_the_admission_recursion_oracle(
        draws in proptest::collection::vec((0u64..90_000_000, 0u64..5, 0usize..64), 1..10),
        slots in 1usize..4,
    ) {
        let arrivals = cheap_arrivals(&draws);
        let out = serve(
            &WorkloadConfig { slots, ..WorkloadConfig::default() },
            &arrivals,
        ).unwrap();
        let ttcs: Vec<u64> = out.report.records.iter()
            .map(|r| r.finish_us - r.start_us)
            .collect();
        let expect = fifo_oracle(&arrivals, &ttcs, slots);
        for (r, (start, finish)) in out.report.records.iter().zip(expect) {
            prop_assert_eq!(r.start_us, start, "session {}", r.session);
            prop_assert_eq!(r.finish_us, finish, "session {}", r.session);
        }
    }

    #[test]
    fn fair_share_never_admits_over_a_waiting_lighter_tenant(
        draws in proptest::collection::vec((0u64..30_000_000, 0u64..4, 0usize..64), 2..10),
        half_life_sel in 0usize..3,
    ) {
        let arrivals = cheap_arrivals(&draws);
        let config = ServiceConfig::fair_share(
            WorkloadConfig { slots: 1, ..WorkloadConfig::default() },
            [0.0, 120.0, 3600.0][half_life_sel],
        );
        let mut engine = ServiceEngine::new(config, &arrivals).unwrap();
        engine.run().unwrap();
        for s in engine.admissions() {
            if let Some(min_waiting) = s.min_waiting_usage {
                prop_assert!(
                    s.admitted_usage <= min_waiting + 1e-9,
                    "session {} (tenant {}) admitted at usage {} over a \
                     waiting tenant at {}",
                    s.session, s.tenant, s.admitted_usage, min_waiting
                );
            }
        }
    }

    #[test]
    fn rejecting_saturation_never_exceeds_the_bound(
        draws in proptest::collection::vec((0u64..10_000_000, 0u64..4, 0usize..64), 2..10),
        bound in 1usize..3,
    ) {
        let arrivals = cheap_arrivals(&draws);
        let config = ServiceConfig {
            max_queue_depth: Some(bound),
            saturation: SaturationMode::Reject,
            ..ServiceConfig::fifo(WorkloadConfig { slots: 1, ..WorkloadConfig::default() })
        };
        let out = ServiceEngine::new(config, &arrivals).unwrap().run().unwrap();
        prop_assert!(out.report.queue_depth_peak <= bound as f64);
        prop_assert_eq!(
            out.report.ok_sessions + out.report.rejected_sessions,
            arrivals.len()
        );
    }

    #[test]
    fn deferring_saturation_serves_everyone(
        draws in proptest::collection::vec((0u64..10_000_000, 0u64..4, 0usize..64), 2..10),
        bound in 1usize..3,
    ) {
        let arrivals = cheap_arrivals(&draws);
        let config = ServiceConfig {
            max_queue_depth: Some(bound),
            saturation: SaturationMode::Defer,
            ..ServiceConfig::fifo(WorkloadConfig { slots: 1, ..WorkloadConfig::default() })
        };
        let out = ServiceEngine::new(config, &arrivals).unwrap().run().unwrap();
        prop_assert_eq!(out.report.rejected_sessions, 0);
        prop_assert_eq!(out.report.ok_sessions, arrivals.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism property: the lazy streamed engine —
    /// arrivals pulled through a bounded look-ahead window, service times
    /// evaluated just-in-time on a worker pool, records rendered to a
    /// sink and dropped — produces byte-identical JSONL to the buffered
    /// engine, for every admission policy, saturation mode, look-ahead
    /// width, worker count, and seed. And a checkpoint taken at any
    /// arrival boundary under any look-ahead restores to a byte-identical
    /// suffix.
    #[test]
    fn streamed_engine_is_byte_identical_to_the_buffered_oracle(
        draws in proptest::collection::vec((0u64..20_000_000, 0u64..4, 0usize..64), 2..10),
        seed in 0u64..1000,
        policy_sel in 0usize..2,
        saturation_sel in 0usize..3,
        lookahead in 1usize..5,
        eval_workers in 1usize..3,
    ) {
        let arrivals = cheap_arrivals(&draws);
        let stream_cfg = WorkloadConfig { seed, slots: 1, ..WorkloadConfig::default() };
        let base = match policy_sel {
            0 => ServiceConfig::fifo(stream_cfg),
            _ => ServiceConfig::fair_share(stream_cfg, 120.0),
        };
        let config = match saturation_sel {
            0 => base,
            1 => ServiceConfig {
                max_queue_depth: Some(1),
                saturation: SaturationMode::Reject,
                ..base
            },
            _ => ServiceConfig {
                max_queue_depth: Some(1),
                saturation: SaturationMode::Defer,
                ..base
            },
        };
        let options = entk_workload::EngineOptions { lookahead, eval_workers };

        // Oracle: the buffered engine at default options.
        let oracle = ServiceEngine::new(config.clone(), &arrivals).unwrap().run().unwrap();

        // Streamed sink serve under the drawn knobs.
        let mut sink = Vec::new();
        let stats = ServiceEngine::with_options(config.clone(), &arrivals, options)
            .unwrap()
            .run_streaming(&mut sink)
            .unwrap();
        prop_assert_eq!(&String::from_utf8(sink).unwrap(), &oracle.jsonl);
        prop_assert_eq!(&stats.stream_fp, &oracle.report.stream_fp);

        // Checkpoint at a mid-stream boundary under the drawn knobs.
        let k = arrivals.len() / 2;
        let mut victim =
            ServiceEngine::with_options(config.clone(), &arrivals, options).unwrap();
        victim.run_to_boundary(k).unwrap();
        let prefix = victim.emitted_jsonl().to_string();
        let ckpt = ServiceCheckpoint::from_json(&victim.checkpoint().to_json()).unwrap();
        let resumed =
            ServiceEngine::restore_with_options(config, &arrivals, &ckpt, options)
                .unwrap()
                .run()
                .unwrap();
        prop_assert_eq!(
            format!("{prefix}{}", resumed.suffix_jsonl),
            oracle.jsonl,
            "boundary {} under lookahead {} must replay exactly", k, lookahead
        );
    }
}

#[test]
fn checkpoint_restore_at_every_arrival_boundary_is_exact() {
    let draws: Vec<(u64, u64, usize)> = (0..8)
        .map(|i| (((i * 37) % 11) * 3_000_000, i % 3, (i * 13) as usize))
        .collect();
    let arrivals = cheap_arrivals(&draws);
    for (label, config) in [
        (
            "fifo",
            ServiceConfig::fifo(WorkloadConfig {
                slots: 2,
                ..WorkloadConfig::default()
            }),
        ),
        (
            "fair",
            ServiceConfig::fair_share(
                WorkloadConfig {
                    slots: 2,
                    ..WorkloadConfig::default()
                },
                120.0,
            ),
        ),
        (
            "bounded",
            ServiceConfig {
                max_queue_depth: Some(1),
                saturation: SaturationMode::Defer,
                ..ServiceConfig::fifo(WorkloadConfig {
                    slots: 1,
                    ..WorkloadConfig::default()
                })
            },
        ),
    ] {
        let full = ServiceEngine::new(config.clone(), &arrivals)
            .unwrap()
            .run()
            .unwrap();
        for k in 0..=arrivals.len() {
            let mut victim = ServiceEngine::new(config.clone(), &arrivals).unwrap();
            victim.run_to_boundary(k).unwrap();
            let prefix = victim.emitted_jsonl().to_string();
            let ckpt = ServiceCheckpoint::from_json(&victim.checkpoint().to_json()).unwrap();
            let resumed = ServiceEngine::restore(config.clone(), &arrivals, &ckpt)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                format!("{prefix}{}", resumed.suffix_jsonl),
                full.jsonl,
                "{label}: boundary {k} must replay a byte-identical stream"
            );
            assert_eq!(
                resumed.report, full.report,
                "{label}: boundary {k} report mismatch"
            );
        }
    }
}
