//! Golden-fingerprint equivalence: these eight stream fingerprints were
//! captured from the evaluate-everything-upfront engine immediately
//! before the out-of-core streaming refactor. The lazy engine — pull
//! ingestion, just-in-time evaluation, bounded look-ahead — must keep
//! every byte, across both backends, both policies, both saturation
//! modes, and both degraded-session flavors. Each case is additionally
//! served through `run_streaming` to prove the sink path emits the same
//! bytes it would have buffered.

use entk_workload::{
    SaturationMode, ServiceConfig, ServiceEngine, SessionArrival, StreamBackend, SyntheticTrace,
    WorkloadConfig, WorkloadGenerator,
};

fn base(backend: StreamBackend, slots: usize) -> WorkloadConfig {
    WorkloadConfig {
        seed: 2016,
        resource: "xsede.stampede".into(),
        slots,
        backend,
        unit_failure_rate: 0.0,
        ..WorkloadConfig::default()
    }
}

fn check(label: &str, config: ServiceConfig, arrivals: &[SessionArrival], fp: &str, bytes: usize) {
    let out = ServiceEngine::new(config.clone(), arrivals)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.report.stream_fp, fp, "{label}: buffered fingerprint");
    assert_eq!(out.jsonl.len(), bytes, "{label}: buffered byte count");
    let mut sink = Vec::new();
    let stats = ServiceEngine::new(config, arrivals)
        .unwrap()
        .run_streaming(&mut sink)
        .unwrap();
    assert_eq!(stats.stream_fp, fp, "{label}: streamed fingerprint");
    assert_eq!(sink.len(), bytes, "{label}: streamed byte count");
    assert_eq!(String::from_utf8(sink).unwrap(), out.jsonl, "{label}");
}

#[test]
fn sim_fifo_golden() {
    let arrivals = SyntheticTrace::new(11, 10, 4).generate().unwrap();
    check(
        "sim-fifo",
        ServiceConfig::fifo(base(StreamBackend::Simulated, 2)),
        &arrivals,
        "a27e6c5343a2ae32",
        2031,
    );
}

#[test]
fn fed_fifo_golden() {
    let arrivals = SyntheticTrace::new(11, 6, 3).generate().unwrap();
    check(
        "fed-fifo",
        ServiceConfig::fifo(base(StreamBackend::Federated { members: 2 }, 2)),
        &arrivals,
        "5b9f08268873b07e",
        1210,
    );
}

#[test]
fn hot_tenant_fair_share_golden() {
    let arrivals = entk_workload::HotTenantTrace::new(21, 24, 4)
        .generate()
        .unwrap();
    check(
        "hot-fair",
        ServiceConfig::fair_share(base(StreamBackend::Simulated, 1), 600.0),
        &arrivals,
        "9aad993584604a18",
        4938,
    );
}

#[test]
fn bounded_queue_goldens() {
    let arrivals = SyntheticTrace::new(3, 16, 4).generate().unwrap();
    check(
        "bounded-reject",
        ServiceConfig {
            max_queue_depth: Some(1),
            saturation: SaturationMode::Reject,
            ..ServiceConfig::fifo(base(StreamBackend::Simulated, 1))
        },
        &arrivals,
        "fa5477bc387fc5dc",
        4039,
    );
    check(
        "bounded-defer",
        ServiceConfig {
            max_queue_depth: Some(1),
            saturation: SaturationMode::Defer,
            ..ServiceConfig::fifo(base(StreamBackend::Simulated, 1))
        },
        &arrivals,
        "cca83bcc4a9fbb23",
        3269,
    );
}

#[test]
fn degraded_session_goldens() {
    let partials = SyntheticTrace::new(7, 4, 2).generate().unwrap();
    check(
        "partials",
        ServiceConfig::fifo(WorkloadConfig {
            unit_failure_rate: 1.0,
            ..base(StreamBackend::Simulated, 2)
        }),
        &partials,
        "43f697af7f1cd0d4",
        817,
    );
    let mut with_failed = SyntheticTrace::new(7, 8, 3).generate().unwrap();
    with_failed[3].cores = 1_000_000_000;
    check(
        "with-failed",
        ServiceConfig::fifo(base(StreamBackend::Simulated, 2)),
        &with_failed,
        "e84bc491543604ce",
        1692,
    );
}

#[test]
fn fair_share_synthetic_golden() {
    let arrivals = SyntheticTrace::new(13, 12, 4).generate().unwrap();
    check(
        "fair-synth",
        ServiceConfig::fair_share(base(StreamBackend::Simulated, 2), 300.0),
        &arrivals,
        "138e4df842318653",
        2441,
    );
}
