//! Replica-exchange molecular dynamics with *real* execution.
//!
//! The Ensemble-Exchange pattern (paper §III-D2, Figs. 5–6) drives the toy
//! MD engine locally: each replica integrates a solvated surrogate peptide
//! at its ladder temperature, exchanges use the Metropolis criterion on
//! real potential energies, and replicas walk the temperature ladder.
//!
//! Run with: `cargo run --release --example replica_exchange`

use entk_core::prelude::*;
use serde_json::json;

fn main() {
    let replicas = 6;
    let cycles = 4;
    let ladder = TemperatureLadder::geometric(replicas, 0.6, 2.0);
    println!(
        "T-REMD: {replicas} replicas × {cycles} cycles, ladder {:?}",
        ladder
            .temps()
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let mut pattern = EnsembleExchange::new(replicas, cycles, ladder, |replica, cycle, temp| {
        KernelCall::new(
            "md.amber",
            json!({
                "n_atoms": 60,            // small surrogate for a snappy demo
                "steps": 80,
                "record_every": 40,
                "temperature": temp,
                "seed": (replica * 101 + cycle) as u64,
            }),
        )
    });

    let mut handle = ResourceHandle::local(replicas.min(4));
    handle.allocate().expect("local pool ready");
    let report = handle.run(&mut pattern).expect("REMD completes");
    handle.deallocate().expect("teardown");

    let (accepted, attempted) = pattern.swap_stats();
    println!("wall time        : {}", report.ttc);
    println!(
        "md segments      : {}",
        report.stage_exec_summary("simulation").count()
    );
    println!(
        "exchange sweeps  : {}",
        report.stage_exec_summary("exchange").count()
    );
    println!(
        "swap acceptance  : {accepted}/{attempted} ({:.0}%)",
        if attempted == 0 {
            0.0
        } else {
            100.0 * accepted as f64 / attempted as f64
        }
    );
    println!("final rungs      : {:?}", pattern.rungs());
    assert_eq!(report.failed_tasks, 0);
}
