//! Capacity planning under queue contention: how execution strategies
//! (paper §V / Ref. [23]) change time-to-completion when the target machine
//! is busy.
//!
//! The same 128-task campaign runs on a simulated Comet whose batch queue
//! carries competing background jobs and charges longer waits for larger
//! requests. Three acquisition strategies are compared: one big pilot,
//! split pilots with late binding, and split pilots on a backfilling queue.
//!
//! Run with: `cargo run --release --example contention`

use entk_core::prelude::*;
use entk_sim::Dist;
use serde_json::json;

fn campaign() -> BagOfTasks {
    BagOfTasks::new(128, |i| {
        KernelCall::new("misc.sleep", json!({ "secs": 60.0 + (i % 7) as f64 }))
    })
}

fn busy_comet() -> entk_cluster::PlatformSpec {
    let mut p = entk_cluster::PlatformSpec::comet();
    p.queue_wait_per_core = 1.5; // larger requests wait longer
    p
}

fn load() -> entk_cluster::BackgroundLoad {
    entk_cluster::BackgroundLoad {
        mean_interarrival_secs: 120.0,
        cores: Dist::Uniform { lo: 24.0, hi: 96.0 },
        runtime: Dist::Uniform {
            lo: 300.0,
            hi: 1200.0,
        },
        initial_jobs: 3,
    }
}

fn run(label: &str, strategy: PilotStrategy, policy: entk_pilot::BatchPolicy) -> f64 {
    let config = ResourceConfig::new("xsede.comet", 128, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        seed: 7,
        platform: Some(busy_comet()),
        background_load: Some(load()),
        pilot_strategy: strategy,
        batch_policy: policy,
        ..Default::default()
    };
    let mut pattern = campaign();
    let report = run_simulated(config, sim, &mut pattern).expect("campaign completes");
    println!(
        "{label:<34} TTC {:>9.1}s  (resource wait {:>8.1}s, exec {:>7.1}s)",
        report.ttc.as_secs_f64(),
        report.overheads.resource_wait.as_secs_f64(),
        report.exec_time().as_secs_f64()
    );
    report.ttc.as_secs_f64()
}

fn main() {
    use entk_pilot::BatchPolicy;
    println!("128 tasks x ~60 s on a busy Comet (3 jobs queued, Poisson arrivals):\n");
    let single = run(
        "one 128-core pilot, FIFO queue",
        PilotStrategy::single(),
        BatchPolicy::Fifo,
    );
    let split = run(
        "8 x 16-core pilots, FIFO queue",
        PilotStrategy::split(8),
        BatchPolicy::Fifo,
    );
    let backfill = run(
        "8 x 16-core pilots, EASY backfill",
        PilotStrategy::split(8),
        BatchPolicy::Backfill,
    );
    println!();
    println!(
        "splitting saves {:.0}% of TTC; backfill saves {:.0}% more",
        100.0 * (1.0 - split / single),
        100.0 * (1.0 - backfill / split)
    );
    assert!(split <= single, "split pilots should not be slower here");
}
