//! PST (pipeline–stage–task) workflow: the application model the Ensemble
//! Toolkit adopted after the paper, built here as a higher-order pattern.
//!
//! Two concurrent pipelines run on one simulated Comet allocation: an MD
//! pipeline (equilibrate → production ensemble → analysis) and an
//! independent data-processing pipeline (generate → reduce).
//!
//! Run with: `cargo run --release --example pst_workflow`

use entk_core::prelude::*;
use serde_json::json;

fn main() {
    let md_pipeline = Pipeline::new("md-campaign")
        .with_stage(Stage::new("equilibrate").with_task(PstTask::new(
            "equil",
            KernelCall::new(
                "md.amber",
                json!({ "steps": 1500, "n_atoms": 2881, "seed": 1 }),
            ),
        )))
        .with_stage({
            let mut stage = Stage::new("production");
            for i in 0..8 {
                stage = stage.with_task(PstTask::new(
                    format!("prod-{i}"),
                    KernelCall::new(
                        "md.amber",
                        json!({ "steps": 3000, "n_atoms": 2881, "seed": 100 + i }),
                    ),
                ));
            }
            stage
        })
        .with_stage(Stage::new("analysis").with_task(PstTask::new(
            "coco",
            KernelCall::new("ana.coco", json!({ "n_sims": 8, "n_new": 4 })),
        )));

    let data_pipeline = Pipeline::new("data-prep")
        .with_stage({
            let mut stage = Stage::new("generate");
            for i in 0..4 {
                stage = stage.with_task(PstTask::new(
                    format!("gen-{i}"),
                    KernelCall::new("misc.mkfile", json!({ "bytes": 1 << 20 })),
                ));
            }
            stage
        })
        .with_stage(Stage::new("reduce").with_task(PstTask::new(
            "count",
            KernelCall::new("misc.ccount", json!({ "bytes": 4 << 20 })),
        )));

    let mut workflow = PstWorkflow::new(vec![md_pipeline, data_pipeline]);
    println!("PST workflow: {} total tasks", workflow.total_tasks());

    let config = ResourceConfig::new("xsede.comet", 24, SimDuration::from_secs(36_000));
    let report = run_simulated(config, SimulatedConfig::default(), &mut workflow)
        .expect("workflow completes");

    println!("TTC {}   exec {}", report.ttc, report.exec_time());
    for stage in report.stages() {
        let s = report.stage_exec_summary(stage);
        println!(
            "  stage {stage:<12} {} tasks, mean exec {:>7.2}s, stage span {:>8.2}s",
            s.count(),
            s.mean(),
            report.stage_time(stage).as_secs_f64()
        );
    }
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(workflow.failed_pipelines(), 0);
}
