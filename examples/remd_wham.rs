//! REMD → WHAM: a two-phase campaign on one allocation.
//!
//! Phase 1 runs temperature-REMD (the paper's EE pattern) with real toy-MD
//! energies, using a *wrapper pattern* — a user-defined decorator around
//! `EnsembleExchange` that records every replica's (temperature, energy)
//! sample as it streams past. This is the paper's "building blocks"
//! thesis in action: patterns compose and extend without touching the
//! toolkit.
//!
//! Phase 2 feeds the samples to the `ana.wham` kernel and prints mean
//! energy and heat capacity across the ladder.
//!
//! Run with: `cargo run --release --example remd_wham`

use entk_core::prelude::*;
use serde_json::json;

/// Decorator pattern: delegates to an inner EE pattern while harvesting
/// (temperature, potential energy) pairs from simulation results.
struct RecordingRemd {
    inner: EnsembleExchange,
    temps: Vec<f64>,
    /// One sample list per ladder rung.
    samples: Vec<Vec<f64>>,
}

impl RecordingRemd {
    fn new(inner: EnsembleExchange, temps: Vec<f64>) -> Self {
        let n = temps.len();
        RecordingRemd {
            inner,
            temps,
            samples: vec![Vec::new(); n],
        }
    }

    fn rung_of_temp(&self, t: f64) -> usize {
        self.temps
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - t)
                    .abs()
                    .partial_cmp(&(b.1 - t).abs())
                    .expect("finite temps")
            })
            .map(|(i, _)| i)
            .expect("non-empty ladder")
    }
}

impl ExecutionPattern for RecordingRemd {
    fn name(&self) -> &str {
        "recording-remd"
    }
    fn on_start(&mut self) -> Vec<Task> {
        self.inner.on_start()
    }
    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        if result.stage == "simulation" && result.success {
            if let (Some(t), Some(e)) = (
                result.output["temperature"].as_f64(),
                result.output["potential"].as_f64(),
            ) {
                let rung = self.rung_of_temp(t);
                self.samples[rung].push(e);
            }
        }
        self.inner.on_task_done(result)
    }
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
    fn progress(&self) -> String {
        self.inner.progress()
    }
}

fn main() {
    let replicas = 4;
    let cycles = 6;
    let ladder = TemperatureLadder::geometric(replicas, 0.6, 1.8);
    let temps = ladder.temps().to_vec();

    let ee = EnsembleExchange::new(replicas, cycles, ladder, |replica, cycle, temp| {
        KernelCall::new(
            "md.amber",
            json!({
                "n_atoms": 60, "steps": 60, "record_every": 60,
                "temperature": temp,
                "seed": (replica * 97 + cycle * 13) as u64,
            }),
        )
    });
    let mut remd = RecordingRemd::new(ee, temps.clone());

    let mut handle = ResourceHandle::local(4);
    handle.allocate().expect("local pool ready");
    let report = handle.run(&mut remd).expect("REMD completes");
    println!(
        "phase 1 (REMD): {} tasks in {}; samples per rung: {:?}",
        report.task_count(),
        report.ttc,
        remd.samples.iter().map(Vec::len).collect::<Vec<_>>()
    );

    // Phase 2: WHAM over the harvested energies, on the same allocation.
    let samples = remd.samples.clone();
    let temps_for_wham = temps.clone();
    let mut wham_stage = BagOfTasks::new(1, move |_| {
        KernelCall::new(
            "ana.wham",
            json!({
                "energy_samples": samples,
                "temperatures": temps_for_wham,
                "n_bins": 30,
            }),
        )
    });

    // Capture the analysis output through another thin wrapper.
    struct Capture<P: ExecutionPattern> {
        inner: P,
        output: Option<serde_json::Value>,
    }
    impl<P: ExecutionPattern> ExecutionPattern for Capture<P> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn on_start(&mut self) -> Vec<Task> {
            self.inner.on_start()
        }
        fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
            if result.success {
                self.output = Some(result.output.clone());
            }
            self.inner.on_task_done(result)
        }
        fn is_done(&self) -> bool {
            self.inner.is_done()
        }
    }
    let mut capture = Capture {
        inner: &mut wham_stage, // &mut P is itself a pattern
        output: None,
    };

    handle.run(&mut capture).expect("WHAM completes");
    handle.deallocate().expect("teardown");

    let wham = capture.output.expect("WHAM produced output");
    println!(
        "phase 2 (WHAM): converged after {} iterations",
        wham["iterations"]
    );
    println!("  T        <E>        C_v");
    let ts = wham["target_temps"].as_array().unwrap();
    let es = wham["mean_energies"].as_array().unwrap();
    let cs = wham["heat_capacities"].as_array().unwrap();
    for i in 0..ts.len() {
        println!(
            "  {:<8.3} {:<10.2} {:<8.2}",
            ts[i].as_f64().unwrap(),
            es[i].as_f64().unwrap(),
            cs[i].as_f64().unwrap()
        );
    }
    // Physical sanity: mean energy rises with temperature.
    let e: Vec<f64> = es.iter().filter_map(|v| v.as_f64()).collect();
    assert!(
        e.windows(2).all(|w| w[1] >= w[0]),
        "⟨E⟩ must rise with T: {e:?}"
    );
}
