//! Quickstart: the paper's character-count application (Fig. 3) on a
//! simulated XSEDE Comet allocation.
//!
//! Five steps, matching the paper's Fig. 1:
//!   1. pick an execution pattern       → `EnsembleOfPipelines`
//!   2. define kernels for its stages   → `misc.mkfile`, `misc.ccount`
//!   3. create a resource handle        → `ResourceHandle::simulated`
//!   4. run (execution plugin binds and executes)
//!   5. get control (and a report) back
//!
//! Run with: `cargo run --release --example quickstart`

use entk_core::prelude::*;
use serde_json::json;

fn main() {
    let tasks = 24;

    // (1) + (2): pattern with kernels bound per stage.
    let mut pattern = EnsembleOfPipelines::new(tasks, 2, |p, stage| {
        if stage == 0 {
            KernelCall::new(
                "misc.mkfile",
                json!({ "bytes": 1024, "path": format!("/tmp/f{p}") }),
            )
        } else {
            KernelCall::new(
                "misc.ccount",
                json!({ "bytes": 1024, "path": format!("/tmp/f{p}") }),
            )
        }
    })
    .with_stage_labels(vec!["mkfile".into(), "ccount".into()]);

    // (3): resource handle for `tasks` cores on the Comet model.
    let config = ResourceConfig::new("xsede.comet", tasks, SimDuration::from_secs(3600));
    let mut handle =
        ResourceHandle::simulated(config, SimulatedConfig::default()).expect("valid resource");

    // (4): allocate → run → deallocate.
    handle.allocate().expect("pilot becomes active");
    let report = handle.run(&mut pattern).expect("pattern completes");
    let session = handle.deallocate().expect("clean teardown");

    // (5): the report decomposes TTC exactly like the paper's Fig. 3.
    println!("pattern          : {}", report.pattern);
    println!("tasks            : {}", report.task_count());
    println!("TTC              : {}", session.ttc);
    println!("  exec time      : {}", report.exec_time());
    println!("  core overhead  : {}", session.overheads.core);
    println!("  pattern ovh.   : {}", session.overheads.pattern);
    println!("  resource wait  : {}", session.overheads.resource_wait);
    for stage in report.stages() {
        let s = report.stage_exec_summary(stage);
        println!(
            "  stage {stage:<8}: {} tasks, mean exec {:.2}s",
            s.count(),
            s.mean()
        );
    }
    assert_eq!(report.failed_tasks, 0);
}
