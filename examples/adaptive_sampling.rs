//! ExTASY-style adaptive sampling: Simulation-Analysis Loop with real MD
//! and real CoCo analysis, plus the paper's §V adaptivity extension —
//! the analysis decides how many simulations the next iteration runs.
//!
//! Each iteration: (1) an ensemble of toy-MD simulations produces solute
//! conformations; (2) CoCo fits a PCA, measures how much of the projected
//! space is covered, and proposes starting structures in unexplored
//! regions; (3) the ensemble size adapts to the measured coverage.
//!
//! Run with: `cargo run --release --example adaptive_sampling`

use entk_core::prelude::*;
use parking_lot::Mutex;
use serde_json::json;
use std::sync::Arc;

fn main() {
    let iterations = 3;
    let initial_sims = 3;

    // Shared state: new start conformations proposed by the latest CoCo
    // pass, consumed by the next iteration's simulations.
    let starts: Arc<Mutex<Vec<serde_json::Value>>> = Arc::new(Mutex::new(Vec::new()));
    let occupancy_log: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));

    let starts_sim = Arc::clone(&starts);
    let starts_ana = Arc::clone(&starts);
    let occupancy_ana = Arc::clone(&occupancy_log);

    let mut pattern = SimulationAnalysisLoop::new(
        iterations,
        initial_sims,
        move |iter, idx| {
            let mut args = json!({
                "n_atoms": 60,
                "steps": 100,
                "record_every": 25,
                "seed": (iter * 1000 + idx) as u64,
            });
            // Seed this simulation from a CoCo-proposed structure if one
            // is available.
            if let Some(start) = starts_sim.lock().get(idx) {
                args["start"] = json!([start]);
            }
            KernelCall::new("md.amber", args)
        },
        move |_iter, outs| {
            // Pool all frames from this iteration's simulations.
            let mut frames: Vec<serde_json::Value> = Vec::new();
            for o in outs {
                if let Some(fs) = o["frames"].as_array() {
                    frames.extend(fs.iter().cloned());
                }
            }
            let _ = &starts_ana; // captured for the completion hook below
            let _ = &occupancy_ana;
            vec![KernelCall::new(
                "ana.coco",
                json!({ "frames": frames, "n_new": 6, "grid": 8 }),
            )]
        },
    )
    .with_adaptivity({
        let starts = Arc::clone(&starts);
        let occupancy_log = Arc::clone(&occupancy_log);
        move |_iter, analysis_outputs| {
            let out = &analysis_outputs[0];
            let occupancy = out["occupancy"].as_f64().unwrap_or(0.0);
            occupancy_log.lock().push(occupancy);
            *starts.lock() = out["new_starts"].as_array().cloned().unwrap_or_default();
            // Low coverage ⇒ widen the ensemble; high coverage ⇒ shrink it.
            if occupancy < 0.3 {
                6
            } else {
                3
            }
        }
    });

    let mut handle = ResourceHandle::local(3);
    handle.allocate().expect("local pool ready");
    let report = handle.run(&mut pattern).expect("adaptive SAL completes");
    handle.deallocate().expect("teardown");

    println!("iterations       : {}", pattern.completed_iterations());
    println!("total tasks      : {}", report.task_count());
    println!("wall time        : {}", report.ttc);
    for (i, occ) in occupancy_log.lock().iter().enumerate() {
        println!("iter {i} projected-space occupancy: {:.2}", occ);
    }
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(pattern.completed_iterations(), iterations);
}
