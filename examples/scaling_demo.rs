//! Scaling demo: a miniature of the paper's Figs. 5–8 on the simulated
//! SuperMIC and Stampede models — strong and weak scaling of the EE and
//! SAL patterns, printed as tables.
//!
//! Run with: `cargo run --release --example scaling_demo`
//! (Full-scale figure regeneration lives in `entk-bench`:
//! `cargo run --release -p entk-bench --bin fig5` etc.)

use entk_bench::{fig5, fig6, fig7, fig8, print_rows};

fn main() {
    // scale=16 divides the paper's problem sizes by 16 so the demo runs in
    // seconds; shapes (who wins, slopes) are unchanged.
    let scale = 16;
    let seed = 42;

    println!("== EE pattern on SuperMIC (T-REMD, alanine dipeptide surrogate) ==");
    print_rows("strong scaling (Fig. 5 /16)", &fig5(seed, scale));
    print_rows("weak scaling (Fig. 6 /16)", &fig6(seed, scale));

    println!();
    println!("== SAL pattern on Stampede (Amber + CoCo) ==");
    print_rows("strong scaling (Fig. 7 /16)", &fig7(seed, scale));
    print_rows("weak scaling (Fig. 8 /16)", &fig8(seed, scale));
}
